"""Cluster device worker: one OS process owning chips and a server shard.

Each worker is a separate interpreter running its own
:class:`~repro.runtime.server.PumServer` over its own
:class:`~repro.runtime.pool.DevicePool` -- its own chips, plan caches,
batch arenas, and (crucially) its own GIL.  The single-server stack is
thread-parallel across devices, but the Python slices of the pipeline
(planning glue, noise modelling, batch assembly) serialize on one GIL;
moving each shard into a process is what makes those slices scale.

``worker_main`` is the process entry point: it attaches to the two
:class:`~repro.runtime.cluster.transport.ShmRing` segments the gateway
created (requests in, replies out) plus the heartbeat board, builds the
server described by its spec, announces ``READY``, and then runs a
command loop -- beat the heartbeat, pop one message, execute, reply.
Request vectors are decoded as zero-copy views of the request ring and
flow straight into ``submit_batch`` (whose bulk admission copy is the
single copy the data ever takes on this side); result matrices are
written directly into the response ring.

The loop is deliberately synchronous per message: a ``SUBMIT`` runs the
batch to completion (``run_until_idle``) before its ``RESULTS`` frame is
pushed, so replies never interleave and the worker's scheduler keeps the
deterministic tick clock of the single-process server -- which is what
makes gateway results bit-identical to a local :class:`PumServer` on the
same trace.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ...core.config import ChipConfig, HctConfig
from ...errors import ReproError, SchedulerError, TransportError
from ...reram import NoiseConfig
from ..server import PumServer
from .faults import TransportFaultSpec
from .messages import (
    K_ACK,
    K_DRAIN,
    K_ERROR,
    K_PING,
    K_READY,
    K_REGISTER,
    K_REGISTERED,
    K_RESULTS,
    K_STOP,
    K_STRAGGLE,
    K_SUBMIT,
    STATUS_CODES,
    decode_message,
    encode_message,
)
from .transport import HeartbeatBoard, ShmRing

__all__ = ["WorkerState", "build_worker_server", "worker_main"]

#: Completed-batch reply frames kept for duplicate suppression.  A dup
#: can only trail its original by the transport's reorder horizon plus
#: one hedge round-trip, both of which are a handful of frames -- 64 is
#: generous without letting result matrices accumulate.
REPLY_CACHE_FRAMES = 64

#: Idle-poll sleep of the command loop (seconds).  Small enough to stay
#: invisible next to millisecond batches, large enough not to spin a
#: core while the gateway has nothing queued.
POLL_INTERVAL = 2e-4

_NOISE_PRESETS = {
    None: lambda: None,
    "ideal": NoiseConfig.ideal,
    "paper_default": NoiseConfig.paper_default,
}


def build_worker_server(spec: Dict[str, Any]) -> PumServer:
    """Construct the :class:`PumServer` a worker spec describes.

    The spec is a plain dict of scalars/strings (it crosses the process
    boundary at spawn time), mirroring the ``PumServer`` constructor:
    ``num_devices``, ``policy``, ``max_batch``, ``max_wait_ticks``,
    ``queue_capacity``, ``backend``, ``replication``, ``verify``, plus
    ``chip`` (``None`` for paper-default chips, ``"small"`` for the fast
    functional configuration) and ``noise`` (``None`` / ``"ideal"`` /
    ``"paper_default"``).
    """
    chip = spec.get("chip")
    if chip is None:
        config = None
    elif chip == "small":
        config = ChipConfig(
            hct=HctConfig.small(), num_hcts=int(spec.get("num_hcts", 3))
        )
    else:
        raise ReproError(f"unknown worker chip preset {chip!r}")
    noise_name = spec.get("noise")
    try:
        noise = _NOISE_PRESETS[noise_name]()
    except KeyError:
        raise ReproError(f"unknown worker noise preset {noise_name!r}") from None
    from ..pool import DevicePool

    pool = DevicePool(
        num_devices=int(spec.get("num_devices", 1)),
        config=config,
        noise=noise,
        policy=spec.get("policy", "cache_affinity"),
        backend=spec.get("backend"),
        replication=int(spec.get("replication", 1)),
        verify=spec.get("verify", "off"),
    )
    return PumServer(
        pool=pool,
        max_batch=spec.get("max_batch"),
        max_wait_ticks=spec.get("max_wait_ticks"),
        queue_capacity=int(spec.get("queue_capacity", 4096)),
        admission="reject",
    )


def _result_frame(server: PumServer, header: Dict[str, Any],
                  futures: List) -> List[bytes]:
    """Assemble the RESULTS frame for a completed batch, in row order."""
    n = len(futures)
    statuses = np.zeros(n, dtype=np.uint8)
    latency = np.zeros(n, dtype=np.int64)
    energy = np.zeros(n, dtype=np.float64)
    rows: List[np.ndarray] = []
    errors: Dict[str, str] = {}
    cols = 0
    for index, future in enumerate(futures):
        response = future.result(timeout=0)
        statuses[index] = STATUS_CODES.get(response.status, STATUS_CODES["failed"])
        latency[index] = response.completion_tick - response.arrival_tick
        energy[index] = response.energy_pj
        if response.result is not None:
            row = np.asarray(response.result, dtype=np.int64)
            cols = max(cols, row.shape[0])
            rows.append(row)
        else:
            rows.append(None)  # type: ignore[arg-type]
            if response.error:
                errors[str(index)] = str(response.error)
    results = np.zeros((n, cols), dtype=np.int64)
    for index, row in enumerate(rows):
        if row is not None:
            results[index, : row.shape[0]] = row
    reply = {"batch": header.get("batch"), "name": header.get("name")}
    if errors:
        reply["errors"] = errors
    return encode_message(
        K_RESULTS, reply, [statuses, results, latency, energy]
    )


class WorkerState:
    """Per-process chaos/idempotency state threaded through the loop.

    * ``reply_cache`` remembers the RESULTS frame of the last
      :data:`REPLY_CACHE_FRAMES` batches by batch id, so a duplicated or
      hedged-back SUBMIT *replays* the original reply instead of
      re-executing -- the dup is byte-identical by construction and the
      server's stats are not double-counted.
    * ``straggle_batches`` / ``straggle_seconds`` implement the
      STRAGGLE chaos command: the next N SUBMITs sleep first, *while
      heartbeating*, so liveness stays green and only the gateway's
      per-batch timeout can catch the slowness (a gray failure).
    """

    def __init__(self) -> None:
        self.reply_cache: "OrderedDict[int, List[bytes]]" = OrderedDict()
        self.duplicates_suppressed = 0
        self.straggle_batches = 0
        self.straggle_seconds = 0.0

    def cached_reply(self, batch: Optional[int]) -> Optional[List[bytes]]:
        if batch is None or batch not in self.reply_cache:
            return None
        self.duplicates_suppressed += 1
        return self.reply_cache[batch]

    def remember_reply(self, batch: Optional[int],
                       reply: List[bytes]) -> None:
        if batch is None:
            return
        self.reply_cache[batch] = reply
        while len(self.reply_cache) > REPLY_CACHE_FRAMES:
            self.reply_cache.popitem(last=False)


def _drain_batch(server: PumServer, beat: Callable[[], None],
                 max_ticks: int = 100_000) -> None:
    """``run_until_idle`` with a heartbeat per tick.

    Beating from *inside* the dispatch loop is what distinguishes a long
    batch from a hang: the board advances while the scheduler makes
    progress, so ``liveness_timeout`` measures wedged-ness, not batch
    length.
    """
    for _ in range(max_ticks):
        if not server.pending:
            return
        server.tick()
        beat()
    if server.pending:
        raise SchedulerError(
            f"queue failed to drain within {max_ticks} ticks "
            f"({server.pending} requests pending)"
        )


def _handle(server: PumServer, kind: int, header: Dict[str, Any],
            arrays: List[np.ndarray],
            beat: Optional[Callable[[], None]] = None,
            state: Optional[WorkerState] = None) -> List[bytes]:
    """Execute one request message; returns the reply frame (or [] to stop)."""
    beat = beat if beat is not None else (lambda: None)
    state = state if state is not None else WorkerState()
    if kind == K_SUBMIT:
        cached = state.cached_reply(header.get("batch"))
        if cached is not None:
            return cached
        if state.straggle_batches > 0:
            state.straggle_batches -= 1
            deadline = time.monotonic() + state.straggle_seconds
            while time.monotonic() < deadline:
                beat()
                time.sleep(POLL_INTERVAL)
        name = header["name"]
        # The one copy this side of the boundary: admitted vectors alias
        # the array handed to submit_batch, which must outlive the ring
        # frame -- so lift the payload out of shared memory here.
        futures = server.submit_batch(
            name, np.array(arrays[0]),
            input_bits=int(header.get("input_bits", 8)),
        )
        _drain_batch(server, beat)
        reply = _result_frame(server, header, futures)
        state.remember_reply(header.get("batch"), reply)
        return reply
    if kind == K_REGISTER:
        # Lift the matrix out of the ring frame before handing it to the
        # registry, which may keep references past the frame's lifetime.
        allocation = server.register_matrix(
            header["name"],
            np.array(arrays[0]),
            element_size=int(header.get("element_size", 8)),
            precision=int(header.get("precision", 0)),
            input_bits=int(header.get("input_bits", 8)),
        )
        handle = server.plan_handle(
            header["name"], input_bits=int(header.get("input_bits", 8))
        )
        return encode_message(K_REGISTERED, {
            "name": header["name"],
            "shape": list(allocation.shape),
            "handle": handle.to_bytes().hex(),
        })
    if kind == K_DRAIN:
        return encode_message(K_ACK, {
            "drain": True, "stats": server.stats.snapshot(),
            "duplicates_suppressed": state.duplicates_suppressed,
        })
    if kind == K_PING:
        return encode_message(K_ACK, {"nonce": header.get("nonce")})
    if kind == K_STRAGGLE:
        state.straggle_batches = int(header.get("batches", 1))
        state.straggle_seconds = float(header.get("seconds", 0.0))
        return encode_message(K_ACK, {
            "straggle": True,
            "batches": state.straggle_batches,
            "seconds": state.straggle_seconds,
        })
    if kind == K_STOP:
        return []
    raise TransportError(f"unknown message kind {kind}")


def worker_main(spec: Dict[str, Any]) -> None:
    """Process entry point: serve the command loop until STOP.

    ``spec`` carries the transport attachment points (``request_ring``,
    ``response_ring``, ``board`` segment names, ``worker_id`` selecting
    the heartbeat slot) alongside the server parameters of
    :func:`build_worker_server`.
    """
    worker_id = int(spec["worker_id"])
    requests = ShmRing(name=spec["request_ring"], create=False)
    replies = ShmRing(name=spec["response_ring"], create=False)
    board = HeartbeatBoard(name=spec["board"], create=False)
    state = WorkerState()

    # A chaos campaign ships its TransportFaultSpec in the spawn spec;
    # the reply direction's injector must live in *this* process because
    # this process is the reply ring's single producer.
    faults = spec.get("transport_faults")
    if faults is not None:
        fault_spec = TransportFaultSpec.from_spec(faults)
        if "reply" in fault_spec.directions:
            fault_spec.injector_for(worker_id, "reply").attach(replies)

    def beat() -> None:
        board.beat(worker_id)

    def send(parts: List[bytes]) -> None:
        # The gateway's inflight window bounds outstanding replies, so a
        # full response ring only means the pump is behind; spin politely
        # and keep beating so the health monitor sees us alive.
        while not replies.push(parts):
            beat()
            time.sleep(POLL_INTERVAL)

    try:
        server = build_worker_server(spec)
    except Exception as exc:  # pragma: no cover - config errors are fatal
        send(encode_message(K_ERROR, {
            "error": f"worker {worker_id} failed to start: {exc}",
        }))
        return
    send(encode_message(K_READY, {"worker": worker_id, "pid": os.getpid()}))

    running = True
    while running:
        board.beat(worker_id)
        try:
            payload = requests.peek()
        except TransportError as exc:
            send(encode_message(K_ERROR, {"error": str(exc)}))
            continue
        if payload is None:
            time.sleep(POLL_INTERVAL)
            continue
        header: Dict[str, Any] = {}
        try:
            kind, header, arrays = decode_message(payload)
            reply = _handle(server, kind, header, arrays, beat=beat,
                            state=state)
        except ReproError as exc:
            # A bad message fails *that message* (the gateway resolves its
            # riders), never the worker: the loop stays up.
            reply = encode_message(K_ERROR, {
                "error": f"{type(exc).__name__}: {exc}",
                "batch": header.get("batch"),
                "name": header.get("name"),
            })
        except Exception as exc:  # pragma: no cover - defensive
            reply = encode_message(K_ERROR, {
                "error": f"{type(exc).__name__}: {exc}",
                "trace": traceback.format_exc(limit=4),
            })
        finally:
            requests.advance()
            # Drop the frame views so the segment has no exported
            # pointers when the rings close at shutdown.
            payload = arrays = None
        if reply:
            send(reply)
        else:
            send(encode_message(K_ACK, {"stopped": worker_id}))
            running = False

    server.pool.close()
    requests.close()
    replies.close()
    board.close()

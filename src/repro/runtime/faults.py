"""Deterministic fault injection for the serving pool (chaos harness).

Resilience code is only as real as the machinery that exercises it.  This
module can make any device of a :class:`~repro.runtime.pool.DevicePool`
fail on demand -- or on a *seeded schedule* -- in three ways:

``kill``
    The device is dead: every call raises
    :class:`~repro.errors.DeviceFailedError` until :meth:`FaultInjector.heal`
    is called.  Models a crashed chip / lost node.
``hang``
    The device is unresponsive for a bounded number of calls (the transport
    layer's timeout is modelled as an immediate failure), then comes back by
    itself.  Models a transient stall.
``corrupt``
    The device silently returns corrupted results for a bounded number of
    calls: one deterministic bit flip per result array.  With verification
    off the pool serves the wrong answer (the chaos suite's negative
    control); with ``DevicePool(verify="full")`` the ABFT checksum tier
    (:mod:`repro.runtime.integrity`) detects the flip and re-executes the
    band on a replica.

All three are deterministic: triggers count per-device calls (not wall
clock), and the corruption mask is derived from ``(seed, device, call)`` so
results do not depend on fan-out thread interleaving.  The pool consults
the injector via :meth:`before_call` / :meth:`after_call` around every
device execution; attaching an injector to a pool is one call::

    injector = FaultInjector(seed=7).attach(pool)
    injector.kill(1)            # device 1 is now dead
    ... serve traffic ...       # shards retry on replicas
    injector.heal(1)            # device 1 rejoins (health mark cleared)

A randomized chaos campaign uses :meth:`FaultSchedule.from_seed` to derive
a reproducible event list, which the property-based invariant suite drives
alongside randomized submit/tick schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..errors import DeviceFailedError, SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pool import DevicePool

__all__ = [
    "FAULT_MODES",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
]

#: Supported fault modes.
FAULT_KILL = "kill"
FAULT_HANG = "hang"
FAULT_CORRUPT = "corrupt"
FAULT_MODES = (FAULT_KILL, FAULT_HANG, FAULT_CORRUPT)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: arm ``mode`` on ``device_index`` at a call count.

    ``after_call`` is the per-device call index (0-based) at which the fault
    activates: the fault fires starting with that call.  ``duration_calls``
    bounds how many calls the fault affects; ``None`` means "until healed"
    (the default for ``kill``).
    """

    device_index: int
    mode: str
    after_call: int = 0
    duration_calls: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise SchedulerError(
                f"unknown fault mode {self.mode!r}; expected one of {FAULT_MODES}"
            )
        if self.after_call < 0:
            raise SchedulerError("after_call must be >= 0")
        if self.duration_calls is not None and self.duration_calls < 1:
            raise SchedulerError("duration_calls must be >= 1 (or None)")


@dataclass(frozen=True)
class FaultSchedule:
    """A reproducible list of :class:`FaultEvent`, usually seed-derived."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    @classmethod
    def from_seed(
        cls,
        seed: int,
        num_devices: int,
        num_events: int = 3,
        horizon_calls: int = 32,
        modes: Tuple[str, ...] = FAULT_MODES,
    ) -> "FaultSchedule":
        """Derive a deterministic random schedule from ``seed``.

        Events are spread uniformly over ``[0, horizon_calls)`` per-device
        call counts; ``kill`` events get a bounded duration too (so a
        randomized campaign self-heals and conservation checks can run the
        queue dry afterwards).
        """
        if num_devices < 1:
            raise SchedulerError("a fault schedule needs at least one device")
        for mode in modes:
            if mode not in FAULT_MODES:
                raise SchedulerError(
                    f"unknown fault mode {mode!r}; expected one of {FAULT_MODES}"
                )
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0xFA017]))
        events = tuple(
            FaultEvent(
                device_index=int(rng.integers(0, num_devices)),
                mode=modes[int(rng.integers(0, len(modes)))],
                after_call=int(rng.integers(0, horizon_calls)),
                duration_calls=int(rng.integers(1, 5)),
            )
            for _ in range(num_events)
        )
        return cls(events=events, seed=int(seed))


class _ActiveFault:
    """Mutable state of one armed fault on one device."""

    __slots__ = ("mode", "remaining")

    def __init__(self, mode: str, remaining: Optional[int]) -> None:
        self.mode = mode
        #: Calls left before the fault clears itself (None = until healed).
        self.remaining = remaining


class FaultInjector:
    """Kill, hang, or corrupt pool devices deterministically.

    The injector is consulted by the pool around every device execution:
    :meth:`before_call` counts the call, arms any scheduled events that are
    due, and raises :class:`~repro.errors.DeviceFailedError` while a
    kill/hang fault is active; :meth:`after_call` applies the deterministic
    bit flip of an active ``corrupt`` fault.  Faults can also be armed
    imperatively (:meth:`kill` / :meth:`hang` / :meth:`corrupt`), which is
    what the chaos tests do to fail a specific device mid-load.

    The injector is *passive* until attached: ``attach(pool)`` registers it
    as ``pool.fault_injector`` (and lets :meth:`heal` clear the pool's
    health mark so traffic returns to the primary replica).
    """

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.seed = seed if seed is not None else self.schedule.seed
        self._pool: Optional["DevicePool"] = None
        self._active: Dict[int, _ActiveFault] = {}
        self._calls: Dict[int, int] = {}
        self._pending: List[FaultEvent] = sorted(
            self.schedule.events, key=lambda e: (e.after_call, e.device_index)
        )
        #: Lifetime counters, exact (chaos tests assert against them).
        self.kills_triggered = 0
        self.hangs_triggered = 0
        self.corruptions_triggered = 0
        self.calls_blocked = 0
        self.results_corrupted = 0

    # ------------------------------------------------------------------ #
    # Wiring                                                               #
    # ------------------------------------------------------------------ #
    def attach(self, pool: "DevicePool") -> "FaultInjector":
        """Install this injector on ``pool`` (returns self for chaining).

        Idempotent: re-attaching to the same pool is a no-op, and attaching
        to a *different* pool first detaches from the old one -- an injector
        drives at most one pool, and a pool holds at most one injector.
        Attaching over a different injector already installed on ``pool``
        raises :class:`~repro.errors.SchedulerError`; detach that one first
        (stacked injectors would double-count calls and fire faults twice).
        """
        installed = pool.fault_injector
        if installed is self and self._pool is pool:
            return self
        if installed is not None and installed is not self:
            raise SchedulerError(
                "pool already has a FaultInjector attached; detach it before "
                "attaching another one"
            )
        if self._pool is not None and self._pool is not pool:
            self.detach()
        pool.fault_injector = self
        self._pool = pool
        return self

    def detach(self) -> None:
        """Remove this injector from its pool (faults stop firing).

        Idempotent: detaching an unattached injector is a no-op, and a
        pool whose injector was swapped out from under us is left alone.
        """
        if self._pool is not None and self._pool.fault_injector is self:
            self._pool.fault_injector = None
        self._pool = None

    # ------------------------------------------------------------------ #
    # Imperative fault control                                             #
    # ------------------------------------------------------------------ #
    def _arm(self, device_index: int, mode: str,
             duration_calls: Optional[int]) -> None:
        if mode == FAULT_KILL:
            self.kills_triggered += 1
        elif mode == FAULT_HANG:
            self.hangs_triggered += 1
        else:
            self.corruptions_triggered += 1
        self._active[device_index] = _ActiveFault(mode, duration_calls)

    def kill(self, device_index: int) -> None:
        """Make ``device_index`` dead until :meth:`heal` is called."""
        self._arm(device_index, FAULT_KILL, None)

    def hang(self, device_index: int, calls: int = 1) -> None:
        """Make ``device_index`` unresponsive for the next ``calls`` calls."""
        if calls < 1:
            raise SchedulerError("hang needs calls >= 1")
        self._arm(device_index, FAULT_HANG, calls)

    def corrupt(self, device_index: int, calls: int = 1) -> None:
        """Silently corrupt the next ``calls`` results of ``device_index``."""
        if calls < 1:
            raise SchedulerError("corrupt needs calls >= 1")
        self._arm(device_index, FAULT_CORRUPT, calls)

    def heal(self, device_index: int) -> None:
        """Clear any active fault and re-admit the device to scheduling.

        Also clears the pool's failed-device mark (when attached), so the
        next dispatch returns to this device wherever it is the primary
        replica -- this is the recovery the degraded-mode benchmark times.
        """
        self._active.pop(device_index, None)
        if self._pool is not None:
            self._pool.restore_device(device_index)

    def active_faults(self) -> Dict[int, str]:
        """Currently armed faults: device index -> mode."""
        return {index: fault.mode for index, fault in self._active.items()}

    # ------------------------------------------------------------------ #
    # Pool-facing hooks                                                    #
    # ------------------------------------------------------------------ #
    def before_call(self, device_index: int) -> None:
        """Account one device call; raise if a kill/hang fault is active."""
        call_index = self._calls.get(device_index, 0)
        self._calls[device_index] = call_index + 1
        # Arm scheduled events that are due for this device.  The pending
        # list is small (a handful of events), so the scan is cheap.
        due = [
            event for event in self._pending
            if event.device_index == device_index and event.after_call <= call_index
        ]
        for event in due:
            self._pending.remove(event)
            self._arm(event.device_index, event.mode, event.duration_calls)
        fault = self._active.get(device_index)
        if fault is None or fault.mode == FAULT_CORRUPT:
            return
        # kill/hang: this call fails.  Hang durations count down and clear
        # themselves; kills persist until healed.
        self.calls_blocked += 1
        kind = fault.mode
        if fault.remaining is not None:
            fault.remaining -= 1
            if fault.remaining <= 0:
                self._active.pop(device_index, None)
        raise DeviceFailedError(device_index, kind)

    def after_call(self, device_index: int, result: np.ndarray) -> np.ndarray:
        """Apply an active ``corrupt`` fault to one device result."""
        fault = self._active.get(device_index)
        if fault is None or fault.mode != FAULT_CORRUPT:
            return result
        if fault.remaining is not None:
            fault.remaining -= 1
            if fault.remaining <= 0:
                self._active.pop(device_index, None)
        # One deterministic bit flip, derived from (seed, device, call) so
        # the corruption is reproducible under any fan-out interleaving.
        call_index = self._calls.get(device_index, 0)
        rng = np.random.default_rng(
            np.random.SeedSequence([int(self.seed), device_index, call_index])
        )
        corrupted = np.array(result, copy=True)
        flat = corrupted.reshape(-1)
        if flat.size:
            flat[int(rng.integers(0, flat.size))] ^= np.int64(
                1 << int(rng.integers(0, 8))
            )
            self.results_corrupted += 1
        return corrupted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(active={self.active_faults()}, "
            f"pending={len(self._pending)}, blocked={self.calls_blocked})"
        )

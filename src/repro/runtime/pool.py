"""Multi-device serving pool: shard matrices and requests over many chips.

One :class:`~repro.runtime.session.DarthPumDevice` exposes one chip.  A
serving deployment runs many chips side by side, so the pool scales the
Table 1 calls across ``N`` devices the same way multi-node machines scale by
sharding work across identical compute tiles:

* ``set_matrix`` places each matrix on the device chosen by the pluggable
  :class:`PlacementPolicy` (``"round_robin"``, ``"least_loaded"``,
  ``"cache_affinity"``, or the cost-model-driven
  ``"predicted_finish_time"``); a matrix too large for any single chip is
  *row-sharded* across several devices, each holding a contiguous band of
  rows.
* ``exec_mvm`` / ``exec_mvm_batch`` split the input vector(s) along the
  shard boundaries, run every shard on its own device (each shard's partial
  result is a full-width ``(batch, cols)`` contribution), and sum the
  partials -- the same map-reduce a multi-chip interconnect performs.
* the row-band topology of every allocation is compiled once into a cached
  :class:`~repro.plan.ir.ShardedPlan` (``compile`` additionally warms the
  tile-level :class:`~repro.plan.ir.MvmPlan` caches), so the per-request
  fan-out does zero planning.
* with ``replication=R`` every row band is programmed on ``R`` *distinct*
  devices; dispatch prefers the primary copy, and a shard whose device
  fails mid-call (:class:`~repro.errors.DeviceFailedError`, typically from
  the :class:`~repro.runtime.faults.FaultInjector`) is retried on a replica
  instead of failing its riders.  Replicas hold identical blocks, partials
  are merged in band order either way, so degraded results are bit-identical
  to fault-free ones.
* ``total_ledger`` aggregates the cost ledgers of every device and chip so
  throughput/energy accounting stays a one-liner.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import ChipConfig
from ..errors import (
    AllocationError,
    ConfigurationError,
    DeviceFailedError,
    IntegrityError,
    NoDevicesError,
    QuantizationError,
    RebuildError,
    ReplicationError,
    ReproError,
)
from ..metrics import CostLedger, merge_ledgers
from ..plan.backends import ExecutionBackend
from ..plan.ir import PlanHandle, ShardTask, ShardedPlan
from ..reram import NoiseConfig
from .allocator import plan_matrix
from .integrity import VERIFY_FULL, VERIFY_MODES, VERIFY_OFF, DeviceHealth, IntegrityChecker
from .session import DarthPumDevice, MatrixAllocation

__all__ = [
    "CacheAffinityPolicy",
    "DevicePool",
    "LeastLoadedPolicy",
    "PlacementPolicy",
    "PooledAllocation",
    "PredictedFinishTimePolicy",
    "RebuildReport",
    "RoundRobinPolicy",
    "Shard",
    "make_placement_policy",
]


#: Shared empty "tried" set for initial replica selection (never mutated).
_NOTHING_TRIED: frozenset = frozenset()


class _ShardFailure:
    """Sentinel carried back from a tolerant fan-out worker: shard failed.

    ``error`` is either a :class:`~repro.errors.DeviceFailedError` (the
    device died mid-call) or an :class:`~repro.errors.IntegrityError` (the
    device answered, but its partial failed the ABFT checksum).
    """

    __slots__ = ("task", "error")

    def __init__(
        self, task: ShardTask, error: Union[DeviceFailedError, IntegrityError]
    ) -> None:
        self.task = task
        self.error = error


@dataclass(frozen=True)
class Shard:
    """One contiguous row band of a pooled matrix, pinned to one device.

    ``replica`` is the copy index within the band: 0 is the primary (the
    copy dispatch prefers), 1..R-1 are failover replicas holding identical
    blocks on distinct devices.
    """

    device_index: int
    row_start: int
    row_end: int
    replica: int = 0

    @property
    def rows(self) -> int:
        """Number of matrix rows held by this shard."""
        return self.row_end - self.row_start


@dataclass
class PooledAllocation:
    """A matrix stored across one or more devices of a :class:`DevicePool`.

    Mirrors :class:`~repro.runtime.session.MatrixAllocation` one level up:
    each shard pairs a :class:`Shard` (which device, which rows) with the
    device-level allocation that actually holds the block.
    """

    allocation_id: int
    shape: Tuple[int, int]
    shards: List[Tuple[Shard, MatrixAllocation]] = field(default_factory=list)
    #: Canonical int64 copy of the source matrix, retained so
    #: :meth:`DevicePool.rebuild` can reprogram lost row bands.
    matrix: Optional[np.ndarray] = None
    #: Quantisation config the matrix was stored with (rebuild reuses it).
    element_size: int = 8
    precision: int = 0

    @property
    def num_shards(self) -> int:
        """Number of row bands the matrix was split into (replicas excluded)."""
        return sum(1 for shard, _ in self.shards if shard.replica == 0)

    @property
    def replication(self) -> int:
        """Copies stored of each row band (1 = unreplicated)."""
        if not self.shards:
            return 1
        return max(shard.replica for shard, _ in self.shards) + 1

    @property
    def devices_used(self) -> List[int]:
        """Indices of the devices holding at least one shard (replicas too)."""
        return sorted({shard.device_index for shard, _ in self.shards})


@dataclass(frozen=True)
class RebuildReport:
    """Outcome of one :meth:`DevicePool.rebuild` pass over an allocation."""

    allocation_id: int
    #: Band positions that received at least one reprogrammed copy.
    bands_rebuilt: Tuple[int, ...]
    #: New copies programmed onto healthy devices, in placement order.
    copies_programmed: Tuple[Shard, ...]
    #: Copies on failed devices that were dropped from the allocation.
    copies_dropped: Tuple[Shard, ...]
    #: Minimum live copies per band after the rebuild (the restored R,
    #: possibly lower than the pool's target when capacity ran short).
    replication: int

    @property
    def changed(self) -> bool:
        """Whether the rebuild modified the allocation at all."""
        return bool(self.copies_programmed or self.copies_dropped)


class PlacementPolicy:
    """Strategy object deciding which device receives each matrix shard.

    ``choose`` is called once per row band while :meth:`DevicePool.set_matrix`
    plans a placement.  It sees the *trial* free-HCT state (``free``), the HCT
    cost of the band (``needed``), and the devices already holding earlier
    shards of the same allocation (``placed_devices``, which also carries any
    caller-supplied affinity hint).  Returning ``None`` means "no device fits",
    which makes the pool retry with more, smaller bands.

    ``committed`` is invoked once a full plan succeeds so stateful policies
    (round-robin's cursor) only advance on placements that actually happen.

    Replication needs no policy-specific support: when placing copy ``r > 0``
    of a band, the pool hands ``choose`` a trial free list in which the
    devices already holding that band are masked out (set to ``-1``), so
    *every* policy -- including :class:`CacheAffinityPolicy`, whose affinity
    pull would otherwise collapse replicas onto one chip -- spreads the
    copies across distinct devices by construction.
    """

    name = "base"

    def bind(self, pool: "DevicePool") -> None:
        """Attach the owning pool (no-op by default).

        Load-model policies (:class:`PredictedFinishTimePolicy`) need to
        query the pool's live allocations when choosing; the pool calls
        this once at construction and once per policy swap.
        """

    def choose(
        self,
        free: Sequence[int],
        needed: int,
        placed_devices: Sequence[int],
    ) -> Optional[int]:
        """Pick a device index with ``free[index] >= needed``, or ``None``."""
        raise NotImplementedError

    def committed(self, plan: Sequence["Shard"], num_devices: int) -> None:
        """Observe a successfully committed placement (no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPolicy(PlacementPolicy):
    """Cycle through the devices, skipping any that cannot hold the band."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self,
        free: Sequence[int],
        needed: int,
        placed_devices: Sequence[int],
    ) -> Optional[int]:
        num_devices = len(free)
        for offset in range(num_devices):
            index = (self._cursor + len(placed_devices) + offset) % num_devices
            if free[index] >= needed:
                return index
        return None

    def committed(self, plan: Sequence[Shard], num_devices: int) -> None:
        self._cursor = (self._cursor + len(plan)) % num_devices


class LeastLoadedPolicy(PlacementPolicy):
    """Place every band on the device with the most free HCTs."""

    name = "least_loaded"

    def choose(
        self,
        free: Sequence[int],
        needed: int,
        placed_devices: Sequence[int],
    ) -> Optional[int]:
        candidates = [i for i in range(len(free)) if free[i] >= needed]
        if not candidates:
            return None
        return max(candidates, key=lambda i: (free[i], -i))


class CacheAffinityPolicy(PlacementPolicy):
    """Prefer devices already holding shards of the same allocation.

    Keeping an allocation's shards on as few chips as possible means a
    request against it fans out to fewer devices (fewer partial-sum
    reductions) and re-registration of an updated matrix lands where the
    ReRAM arrays are already programmed.  Falls back to least-loaded when no
    preferred device fits.
    """

    name = "cache_affinity"

    def choose(
        self,
        free: Sequence[int],
        needed: int,
        placed_devices: Sequence[int],
    ) -> Optional[int]:
        # Affinity hints may be stale (e.g. recorded before the pool was
        # reconfigured); out-of-range indices are ignored, not an error.
        preferred = [
            i for i in dict.fromkeys(placed_devices)
            if 0 <= i < len(free) and free[i] >= needed
        ]
        if preferred:
            return max(preferred, key=lambda i: (free[i], -i))
        return LeastLoadedPolicy.choose(self, free, needed, placed_devices)


class PredictedFinishTimePolicy(PlacementPolicy):
    """Place each band on the device predicted to finish its work first.

    Where :class:`LeastLoadedPolicy` counts free HCTs -- a *capacity* proxy
    -- this policy prices each candidate device by the summed
    :meth:`~repro.plan.ir.MvmPlan.predicted_cycles` of the allocations
    already resident on it (:meth:`DevicePool.predicted_device_finish_cycles`):
    the cost model's estimate of how long the device needs to serve one
    round of its outstanding matrices.  A device hosting one huge matrix
    stops looking as attractive as one hosting three tiny ones just because
    their HCT counts happen to match.  Ties break toward the most free
    HCTs, then the lowest index; before :meth:`bind` (or on an empty pool)
    it degrades to exactly least-loaded.
    """

    name = "predicted_finish_time"

    def __init__(self) -> None:
        self._pool: Optional["DevicePool"] = None

    def bind(self, pool: "DevicePool") -> None:
        self._pool = pool

    def choose(
        self,
        free: Sequence[int],
        needed: int,
        placed_devices: Sequence[int],
    ) -> Optional[int]:
        candidates = [i for i in range(len(free)) if free[i] >= needed]
        if not candidates:
            return None
        pool = self._pool
        if pool is None:
            return max(candidates, key=lambda i: (free[i], -i))
        return min(
            candidates,
            key=lambda i: (pool.predicted_device_finish_cycles(i), -free[i], i),
        )


def make_placement_policy(policy: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """Resolve a policy name (or pass through a policy instance)."""
    if isinstance(policy, PlacementPolicy):
        return policy
    factories = {
        "round_robin": RoundRobinPolicy,
        "least_loaded": LeastLoadedPolicy,
        "cache_affinity": CacheAffinityPolicy,
        "predicted_finish_time": PredictedFinishTimePolicy,
    }
    if policy not in factories:
        raise AllocationError(
            f"unknown scheduling policy {policy!r}; expected one of "
            f"{tuple(factories)} or a PlacementPolicy instance"
        )
    return factories[policy]()


class DevicePool:
    """Shards matrices and MVM traffic across ``N`` DARTH-PUM chips.

    >>> import numpy as np
    >>> from repro.runtime.pool import DevicePool
    >>> pool = DevicePool(num_devices=2)
    >>> matrix = np.eye(8, dtype=np.int64)
    >>> allocation = pool.set_matrix(matrix, element_size=4, precision=0)
    >>> vectors = np.arange(16, dtype=np.int64).reshape(2, 8) % 4
    >>> out = pool.exec_mvm_batch(allocation, vectors, input_bits=2)
    >>> np.array_equal(out, vectors @ matrix)
    True
    >>> pool.set_matrix(np.eye(8, dtype=np.int64)).devices_used  # least loaded
    [1]

    Parameters
    ----------
    num_devices:
        Number of chips in the pool.
    config:
        Optional :class:`~repro.core.config.ChipConfig` shared by every
        device (defaults to the iso-area chip).
    noise:
        Optional noise configuration shared by every device.
    policy:
        A policy name or a :class:`PlacementPolicy` instance.
        ``"least_loaded"`` (default) places new matrices on the device with
        the most free HCTs; ``"round_robin"`` cycles through the devices;
        ``"cache_affinity"`` keeps an allocation's shards on as few devices
        as possible; ``"predicted_finish_time"`` prices devices by the
        plan-cost-model load of the matrices already resident on them.
    backend:
        Default execution backend for every device MVM issued by this pool
        (a name from the :class:`~repro.plan.backends.BackendRegistry` or
        an :class:`~repro.plan.backends.ExecutionBackend` instance;
        ``None`` defers to the library default, which is vectorized).
        Individual calls may override it.
    parallel:
        When True (the default) and a call fans out to more than one
        device, the per-device work runs on a shared
        :class:`~concurrent.futures.ThreadPoolExecutor` -- NumPy releases
        the GIL inside the kernels, so independent chips really execute
        concurrently.  Results are merged deterministically in shard order
        and each device is only ever driven by one worker at a time, so
        parallel and serial execution are bit-identical.
    max_workers:
        Cap on fan-out worker threads (defaults to the device count).
    replication:
        Copies stored of each row band (default 1 = no replication).  With
        ``replication=R`` every band of every matrix is programmed on ``R``
        distinct devices; dispatch prefers the primary copy and fails over
        to replicas when a device dies mid-call.  Must not exceed
        ``num_devices`` (:class:`~repro.errors.ReplicationError`).
    verify:
        ABFT output verification mode (see :mod:`repro.runtime.integrity`).
        ``"off"`` (default) skips all checks; ``"audit"`` checks every
        fan-out partial against its band's column-sum checksum and counts
        mismatches (``corruptions_detected``) but still serves the result;
        ``"full"`` additionally treats a mismatch as retryable -- the band
        re-executes on a replica within the same call, and only when every
        copy fails does the call raise
        :class:`~repro.errors.IntegrityError` (``kind="exhausted"``).
        Checks are exact on noise-free pools and tolerance-banded under
        noise presets.  Verification assumes value-producing backends; a
        cost-only backend (``backend="estimate"``) returns placeholder
        values that cannot pass a checksum.
    verify_tolerance:
        Optional relative tolerance override for the checksum comparison
        (``None`` = exact when ``noise`` is unset, a small default band
        otherwise; ``0.0`` forces exact comparison even under noise).
    """

    POLICIES = (
        "round_robin", "least_loaded", "cache_affinity", "predicted_finish_time"
    )

    def __init__(
        self,
        num_devices: int = 2,
        config: Optional[ChipConfig] = None,
        noise: Optional[NoiseConfig] = None,
        policy: Union[str, PlacementPolicy] = "least_loaded",
        backend: Union[None, str, ExecutionBackend] = None,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        replication: int = 1,
        verify: str = "off",
        verify_tolerance: Optional[float] = None,
        health_alpha: float = 0.25,
        health_threshold: float = 0.5,
    ) -> None:
        if num_devices < 1:
            raise NoDevicesError(
                f"a device pool needs at least one device (got {num_devices})"
            )
        self.replication = int(replication)
        if self.replication < 1:
            raise ReplicationError(
                self.replication, num_devices,
                f"replication factor must be >= 1 (got {replication})",
            )
        if self.replication > num_devices:
            raise ReplicationError(self.replication, num_devices)
        self.placement_policy = make_placement_policy(policy)
        self.placement_policy.bind(self)
        self.devices: List[DarthPumDevice] = [
            DarthPumDevice(config=config, noise=noise) for _ in range(num_devices)
        ]
        self.backend = backend
        self.parallel = bool(parallel)
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._allocations: Dict[int, PooledAllocation] = {}
        self._sharded_plans: Dict[int, ShardedPlan] = {}
        self._next_allocation = 0
        # Health tracking and degraded-mode telemetry.  A device lands in
        # ``_failed_devices`` when a call on it raises DeviceFailedError;
        # dispatch then prefers its bands' replicas until ``restore_device``
        # (typically via FaultInjector.heal) re-admits it.
        self._failed_devices: set = set()
        self.replica_retries = 0
        self.replica_hits = 0
        self.device_failures = 0
        #: Optional :class:`~repro.runtime.faults.FaultInjector`, consulted
        #: around every device execution when set (see ``attach``).
        self.fault_injector = None
        # Integrity tier: ABFT checksum verification plus per-device EWMA
        # health scores feeding the corruption quarantine.
        self._verify = self._validated_verify(verify)
        noisy = noise is not None and any((
            noise.programming_noise, noise.read_noise, noise.ir_drop,
            noise.drift, noise.stuck_at_faults,
        ))
        self.integrity = IntegrityChecker(tolerance=verify_tolerance, noisy=noisy)
        self._health: List[DeviceHealth] = [
            DeviceHealth(alpha=health_alpha, threshold=health_threshold)
            for _ in range(num_devices)
        ]
        # Health/counter updates can run on fan-out worker threads; the
        # lock keeps the counters exact (tests assert equalities on them).
        self._integrity_lock = threading.Lock()
        self.integrity_checks = 0
        self.corruptions_detected = 0
        self.integrity_reexecutions = 0
        self.quarantines = 0
        self.rebuilds = 0
        self.bands_rebuilt = 0

    @property
    def policy(self) -> str:
        """Name of the active placement policy."""
        return self.placement_policy.name

    @staticmethod
    def _validated_verify(mode: str) -> str:
        if mode not in VERIFY_MODES:
            raise ConfigurationError(
                f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
            )
        return mode

    @property
    def verify(self) -> str:
        """Active ABFT verification mode (``"off"``/``"audit"``/``"full"``)."""
        return self._verify

    @verify.setter
    def verify(self, mode: str) -> None:
        self._verify = self._validated_verify(mode)

    # ------------------------------------------------------------------ #
    # Scheduling                                                           #
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        """Number of chips in the pool."""
        return len(self.devices)

    def free_hcts(self, device_index: int) -> int:
        """Free HCTs on one device."""
        chip = self.devices[device_index].chip
        return chip.num_hcts - chip.allocated_hcts

    def _hcts_for(self, shape: Tuple[int, int], element_size: int, precision: int) -> int:
        """HCTs a matrix of ``shape`` needs on one device of this pool."""
        hct_config = self.devices[0].chip.config.hct
        return plan_matrix(shape, element_size, precision, hct_config).hcts_needed

    # ------------------------------------------------------------------ #
    # Table 1 calls, pool-wide                                             #
    # ------------------------------------------------------------------ #
    def set_matrix(
        self,
        matrix: np.ndarray,
        element_size: int = 8,
        precision: int = 0,
        affinity: Sequence[int] = (),
    ) -> PooledAllocation:
        """Store ``matrix``, sharding it across devices when necessary.

        The matrix is first offered whole to the device the policy selects;
        when no single device can hold it, it is split into the smallest
        number of contiguous row bands such that every band fits some device
        (bands are sized evenly, so the last band may be smaller when the
        row count does not divide).  ``affinity`` optionally seeds the set of
        preferred devices for affinity-aware policies (e.g. the devices that
        held a previous version of the same matrix).
        """
        if not self.devices:
            raise NoDevicesError(
                "DevicePool.set_matrix called with zero devices configured; "
                "construct the pool with num_devices >= 1"
            )
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise QuantizationError("set_matrix expects a 2-D matrix")
        rows, cols = matrix.shape

        # Each shard copy occupies at least one HCT, so the total free
        # capacity (divided by the copies each band needs) bounds the number
        # of bands worth attempting (keeps the failure path linear instead
        # of O(rows^2)).
        total_free = sum(self.free_hcts(index) for index in range(self.num_devices))
        max_shards = min(rows, total_free // self.replication)
        plan: Optional[List[Shard]] = None
        for num_shards in range(1, max_shards + 1):
            plan = self._plan_shards(
                matrix.shape, element_size, precision, num_shards, affinity
            )
            if plan is not None:
                break
        if plan is None:
            raise AllocationError(
                f"matrix of shape {matrix.shape} does not fit this pool even "
                "when sharded one row band per device"
            )
        self.placement_policy.committed(plan, self.num_devices)

        source = np.ascontiguousarray(matrix, dtype=np.int64)
        allocation = PooledAllocation(
            allocation_id=self._next_allocation, shape=(rows, cols),
            matrix=source, element_size=element_size, precision=precision,
        )
        for shard in plan:
            device = self.devices[shard.device_index]
            block = matrix[shard.row_start: shard.row_end, :]
            allocation.shards.append(
                (shard, device.set_matrix(block, element_size=element_size,
                                          precision=precision))
            )
        self.integrity.register(
            allocation.allocation_id, source,
            [(shard.row_start, shard.row_end)
             for shard in plan if shard.replica == 0],
        )
        self._allocations[allocation.allocation_id] = allocation
        self._next_allocation += 1
        return allocation

    def _plan_shards(
        self,
        shape: Tuple[int, int],
        element_size: int,
        precision: int,
        num_shards: int,
        affinity: Sequence[int] = (),
    ) -> Optional[List[Shard]]:
        """Try to place ``num_shards`` even row bands; None when infeasible.

        With ``replication=R`` each band is placed ``R`` times.  Replicas of
        one band must land on distinct devices (that is the whole point of
        a replica), which is enforced here rather than in the policies: the
        trial free list handed to ``choose`` has the band's existing devices
        masked out, so any policy spreads copies correctly.
        """
        rows, cols = shape
        if num_shards > rows:
            return None
        band = -(-rows // num_shards)
        free = [self.free_hcts(index) for index in range(self.num_devices)]
        shards: List[Shard] = []
        start = 0
        while start < rows:
            end = min(rows, start + band)
            needed = self._hcts_for((end - start, cols), element_size, precision)
            band_devices: List[int] = []
            for replica in range(self.replication):
                placed_devices = (
                    list(affinity) + [shard.device_index for shard in shards]
                )
                if band_devices:
                    trial = list(free)
                    for index in band_devices:
                        trial[index] = -1
                else:
                    trial = free
                chosen = self.placement_policy.choose(trial, needed, placed_devices)
                if chosen is None:
                    return None
                free[chosen] -= needed
                band_devices.append(chosen)
                shards.append(
                    Shard(device_index=chosen, row_start=start, row_end=end,
                          replica=replica)
                )
            start = end
        return shards

    # ------------------------------------------------------------------ #
    # Plan compilation                                                     #
    # ------------------------------------------------------------------ #
    def sharded_plan(self, allocation: PooledAllocation) -> ShardedPlan:
        """The cached row-band-to-device plan of ``allocation``.

        Built once per allocation (topology only -- no device work) and
        reused by every subsequent call; ``release`` invalidates it.
        """
        plan = self._sharded_plans.get(allocation.allocation_id)
        if plan is None:
            primaries: List[ShardTask] = []
            copies: Dict[int, List[ShardTask]] = {}
            for shard, device_allocation in allocation.shards:
                position = len(primaries) if shard.replica == 0 else len(primaries) - 1
                task = ShardTask(
                    position=position,
                    device_index=shard.device_index,
                    row_start=shard.row_start,
                    row_end=shard.row_end,
                    device_allocation=device_allocation,
                    replica=shard.replica,
                )
                if shard.replica == 0:
                    primaries.append(task)
                copies.setdefault(position, []).append(task)
            tasks = tuple(primaries)
            by_device: Dict[int, List[ShardTask]] = {}
            for task in tasks:
                by_device.setdefault(task.device_index, []).append(task)
            replicated = any(len(group) > 1 for group in copies.values())
            plan = ShardedPlan(
                allocation_id=allocation.allocation_id,
                shape=allocation.shape,
                tasks=tasks,
                tasks_by_device={k: tuple(v) for k, v in by_device.items()},
                replicas=(
                    {position: tuple(group) for position, group in copies.items()}
                    if replicated else {}
                ),
            )
            self._sharded_plans[allocation.allocation_id] = plan
        return plan

    def compile(
        self, allocation: PooledAllocation, input_bits: int = 8
    ) -> ShardedPlan:
        """Compile the full execution plan of ``allocation`` ahead of time.

        Builds (or fetches) the pool-level :class:`ShardedPlan` and warms
        every tile-level :class:`~repro.plan.ir.MvmPlan` cache at
        ``input_bits``, so the serving hot path performs zero planning --
        ``PumServer.register_matrix`` calls this once per registration.
        """
        plan = self.sharded_plan(allocation)
        if input_bits not in plan.prepared_input_bits:
            # Warm replicas too: a failover must not pay a planning stall in
            # the middle of a degraded batch.
            for task in plan.all_tasks:
                self.devices[task.device_index].compile(
                    task.device_allocation, input_bits=input_bits
                )
            plan.prepared_input_bits.add(input_bits)
        return plan

    def planner_builds(self) -> int:
        """Execution plans compiled across every device in the pool."""
        return sum(device.planner_builds() for device in self.devices)

    # ------------------------------------------------------------------ #
    # Predicted-cost oracle                                                #
    # ------------------------------------------------------------------ #
    def predicted_batch_cycles(
        self, allocation: PooledAllocation, batch: int, input_bits: int = 8
    ) -> float:
        """Predicted cycles of one ``batch`` dispatch against ``allocation``.

        Closed-form evaluation of the cached tile-level plan cost models:
        a device's shards execute serially on that device, devices run
        concurrently, so the prediction is the *max over devices* of each
        device's summed shard cost -- the critical path of the fan-out.
        No device work, no planning (plans were compiled at registration).
        """
        plan = self.sharded_plan(allocation)
        per_device: Dict[int, float] = {}
        for task in plan.tasks:
            per_device[task.device_index] = per_device.get(
                task.device_index, 0.0
            ) + self.devices[task.device_index].predicted_mvm_cycles(
                task.device_allocation, batch, input_bits=input_bits
            )
        return max(per_device.values())

    def predicted_batch_energy_pj(
        self, allocation: PooledAllocation, batch: int, input_bits: int = 8
    ) -> float:
        """Predicted analog-phase energy (pJ) of one ``batch`` dispatch.

        Energy adds across devices (unlike the cycle critical path), so
        this is the plain sum over the allocation's primary shards.
        """
        plan = self.sharded_plan(allocation)
        return sum(
            self.devices[task.device_index].predicted_mvm_energy_pj(
                task.device_allocation, batch, input_bits=input_bits
            )
            for task in plan.tasks
        )

    def plan_handle(
        self, allocation: PooledAllocation, input_bits: int = 8
    ) -> PlanHandle:
        """Process-portable cost surrogate of one pooled allocation.

        The cycle model is the fan-out critical path (max over devices,
        like :meth:`predicted_batch_cycles`), sampled at two batch sizes;
        energy is the per-vector sum over primary shards.  Cheap (pure
        cost-model evaluation) and safe to ship across a process
        boundary -- the cluster tier's registration ack carries it so the
        gateway can route by predicted finish time without ever
        serializing a live plan.
        """
        return PlanHandle.from_cost_samples(
            allocation.shape, input_bits,
            self.predicted_batch_cycles(allocation, 1, input_bits=input_bits),
            self.predicted_batch_cycles(allocation, 17, input_bits=input_bits),
            self.predicted_batch_energy_pj(allocation, 1, input_bits=input_bits),
        )

    def predicted_device_finish_cycles(
        self, device_index: int, batch: int = 1
    ) -> float:
        """Predicted cycles for ``device_index`` to serve one round of work.

        Sums the predicted single-round cost of every live allocation's
        primary shards resident on the device -- the load model behind
        :class:`PredictedFinishTimePolicy`.  Each allocation is priced at
        the smallest precision it was compiled for (8 bits before any
        ``compile``), matching the traffic it is expected to serve.
        """
        total = 0.0
        device = self.devices[device_index]
        for allocation in self._allocations.values():
            plan = self._sharded_plans.get(allocation.allocation_id)
            input_bits = (
                min(plan.prepared_input_bits)
                if plan is not None and plan.prepared_input_bits
                else 8
            )
            for shard, device_allocation in allocation.shards:
                if shard.device_index == device_index and shard.replica == 0:
                    total += device.predicted_mvm_cycles(
                        device_allocation, batch, input_bits=input_bits
                    )
        return total

    # ------------------------------------------------------------------ #
    # Device health and replica failover                                   #
    # ------------------------------------------------------------------ #
    def mark_device_failed(self, device_index: int) -> None:
        """Record that ``device_index`` failed; dispatch avoids it until restored."""
        if device_index not in self._failed_devices:
            self._failed_devices.add(device_index)
            self.device_failures += 1

    def restore_device(self, device_index: int) -> None:
        """Re-admit a previously failed device to shard dispatch.

        Also clears the device's quarantine flag and resets its EWMA health
        score: restoration is the *only* way a quarantined device rejoins
        dispatch (the score would otherwise keep it out forever).
        """
        self._failed_devices.discard(device_index)
        self._health[device_index].reset()

    @property
    def failed_devices(self) -> List[int]:
        """Devices currently marked failed, sorted."""
        return sorted(self._failed_devices)

    def device_health(self, detail: bool = False) -> List:
        """Per-device health of the pool.

        With ``detail=False`` (default): one bool per device, True =
        healthy / dispatchable.  With ``detail=True``: one dict per device
        carrying the dispatchability flag plus the integrity tier's state
        (EWMA ``score``, lifetime ``corruptions``/``failures``, and whether
        the device is currently ``quarantined`` by the corruption
        quarantine).
        """
        healthy = [
            index not in self._failed_devices for index in range(self.num_devices)
        ]
        if not detail:
            return healthy
        return [
            {
                "healthy": healthy[index],
                "score": health.score,
                "corruptions": health.corruptions,
                "failures": health.failures,
                "quarantined": health.quarantined,
            }
            for index, health in enumerate(self._health)
        ]

    def resilience_snapshot(self) -> Tuple[int, int, int, int, int, int]:
        """The resilience counters a server brackets around one dispatch."""
        return (
            self.replica_hits, self.replica_retries, self.device_failures,
            self.integrity_checks, self.corruptions_detected,
            self.integrity_reexecutions,
        )

    def _health_ok(self, device_index: int) -> None:
        """Decay one device's health score after an uneventful call."""
        health = self._health[device_index]
        if health.score:
            with self._integrity_lock:
                health.record_ok()

    def _health_event(self, device_index: int, corruption: bool) -> None:
        """Account one bad event; quarantine the device past the threshold."""
        with self._integrity_lock:
            health = self._health[device_index]
            crossed = (
                health.record_corruption() if corruption
                else health.record_failure()
            )
            if crossed and not health.quarantined:
                health.quarantined = True
                self.quarantines += 1
                self.mark_device_failed(device_index)

    def _finish_call(self, plan: ShardedPlan, task: ShardTask,
                     vectors, partial):
        """Post-process one successful device call: health decay + ABFT check.

        ``vectors`` is the input slice the shard consumed (None when the
        caller has nothing to verify against).  In ``"full"`` mode a failed
        check raises :class:`~repro.errors.IntegrityError` so the retry
        machinery re-executes the band on a replica; ``"audit"`` counts the
        detection but serves the result as-is.
        """
        if self._verify == VERIFY_OFF or vectors is None:
            self._health_ok(task.device_index)
            return partial
        ok = self.integrity.verify(
            plan.allocation_id, task.position, vectors, partial
        )
        if ok is None:
            self._health_ok(task.device_index)
            return partial
        with self._integrity_lock:
            self.integrity_checks += 1
        if ok:
            self._health_ok(task.device_index)
            return partial
        with self._integrity_lock:
            self.corruptions_detected += 1
        self._health_event(task.device_index, corruption=True)
        if self._verify == VERIFY_FULL:
            raise IntegrityError(task.device_index, task.position)
        return partial

    def _device_call(self, device_index: int, fn, *args, **kwargs):
        """Run one device call through the fault injector (when attached)."""
        injector = self.fault_injector
        if injector is not None:
            injector.before_call(device_index)
        result = fn(*args, **kwargs)
        if injector is not None:
            result = injector.after_call(device_index, result)
        return result

    def _select_task(
        self, plan: ShardedPlan, position: int, tried
    ) -> Optional[ShardTask]:
        """Pick the copy of band ``position`` to dispatch.

        Prefers the first *healthy* copy in replica order (primary first);
        when every copy's device is marked failed, falls back to the first
        untried one anyway -- a marked device may have recovered, and trying
        it beats failing the band outright.  Returns ``None`` only when
        every copy has already been tried this call (truly exhausted).
        """
        fallback: Optional[ShardTask] = None
        for task in plan.replica_tasks(position):
            if task.device_index in tried:
                continue
            if fallback is None:
                fallback = task
            if task.device_index not in self._failed_devices:
                return task
        return fallback

    def _exhausted(
        self, plan: ShardedPlan, position: int, device_index: int, tried,
        cause: Optional[Exception] = None,
    ) -> Union[DeviceFailedError, IntegrityError]:
        detail = (
            f"every replica of band {position} of allocation "
            f"{plan.allocation_id} has failed (tried devices {sorted(tried)})"
        )
        if isinstance(cause, IntegrityError):
            return IntegrityError(device_index, position, "exhausted", detail)
        return DeviceFailedError(device_index, "exhausted", detail)

    def _note_shard_failure(self, task: ShardTask, error: Exception) -> None:
        """Health/counter bookkeeping for one failed shard execution.

        A dead device (:class:`~repro.errors.DeviceFailedError`) is marked
        failed immediately -- it did not answer at all.  A corrupted result
        (:class:`~repro.errors.IntegrityError`) is *not*: the device is
        alive and may serve other bands correctly, so only the EWMA health
        score moves (the quarantine pulls it from dispatch once corruption
        proves persistent).  The :class:`IntegrityError` path's score bump
        already happened in ``_finish_call`` when the check failed.
        """
        if not isinstance(error, IntegrityError):
            self.mark_device_failed(task.device_index)
            self._health_event(task.device_index, corruption=False)

    def _note_shard_retry(self, error: Exception) -> None:
        if isinstance(error, IntegrityError):
            with self._integrity_lock:
                self.integrity_reexecutions += 1
        else:
            self.replica_retries += 1

    def _run_shard_with_retry(self, plan: ShardedPlan, position: int, call,
                              verify_input=None):
        """Serially execute one band, failing over across its replicas.

        ``call(task)`` performs the device work for one copy;
        ``verify_input(task)`` (optional) returns the input slice the copy
        consumed, enabling the ABFT check on its result.  A copy whose
        device raises :class:`~repro.errors.DeviceFailedError` is marked
        failed and the next replica is tried; a copy whose result fails
        verification (``verify="full"``) re-executes on a replica the same
        way.  When no copy is left the band raises the appropriate error
        with ``kind="exhausted"``.
        """
        tried: set = set()
        task = self._select_task(plan, position, tried)
        if task.replica != 0:
            self.replica_hits += 1
        while True:
            try:
                result = self._device_call(task.device_index, call, task)
                return self._finish_call(
                    plan, task,
                    verify_input(task) if verify_input is not None else None,
                    result,
                )
            except (DeviceFailedError, IntegrityError) as exc:
                self._note_shard_failure(task, exc)
                tried.add(task.device_index)
                retry = self._select_task(plan, position, tried)
                if retry is None:
                    raise self._exhausted(
                        plan, position, task.device_index, tried, exc
                    ) from exc
                self._note_shard_retry(exc)
                task = retry

    def _dispatch_with_retry(self, selected: Dict, run) -> Dict:
        """Fan out selected shard copies; re-dispatch failed ones on replicas.

        ``selected`` maps an opaque key to ``(plan, task)``;
        ``run(device_index, (key, task))`` returns ``(key, value)`` where
        ``value`` is either a partial result or a :class:`_ShardFailure`
        (the tolerant wrapper converts an in-call ``DeviceFailedError`` or
        a failed ABFT check into the latter so sibling shards are
        unaffected).  The initial wave runs in parallel; retries go out in
        further waves (rarely more than one) until every key has a result
        or some band exhausts its replicas.
        """
        tasks_by_device: Dict[int, List] = {}
        for key, (plan, task) in selected.items():
            tasks_by_device.setdefault(task.device_index, []).append((key, task))
        tried: Dict = {}
        results: Dict = {}
        while tasks_by_device:
            outcomes = self._run_device_tasks(tasks_by_device, run)
            tasks_by_device = {}
            for key, value in outcomes.items():
                if not isinstance(value, _ShardFailure):
                    results[key] = value
                    continue
                plan, _ = selected[key]
                failed = value.task
                self._note_shard_failure(failed, value.error)
                attempted = tried.setdefault(key, set())
                attempted.add(failed.device_index)
                retry = self._select_task(plan, failed.position, attempted)
                if retry is None:
                    raise self._exhausted(
                        plan, failed.position, failed.device_index, attempted,
                        value.error,
                    ) from value.error
                self._note_shard_retry(value.error)
                tasks_by_device.setdefault(retry.device_index, []).append(
                    (key, retry)
                )
        return results

    def _select_all(self, plans_by_key: Dict) -> Dict:
        """Health-aware initial selection for a fan-out: key -> (plan, task)."""
        selected: Dict = {}
        for key, (plan, position) in plans_by_key.items():
            task = self._select_task(plan, position, _NOTHING_TRIED)
            if task.replica != 0:
                self.replica_hits += 1
            selected[key] = (plan, task)
        return selected

    def exec_mvm(
        self,
        allocation: PooledAllocation,
        vector: np.ndarray,
        input_bits: int = 8,
    ) -> np.ndarray:
        """Map-reduce a single MVM over the allocation's shards."""
        vector = np.asarray(vector, dtype=np.int64)
        rows, cols = allocation.shape
        if vector.shape != (rows,):
            raise QuantizationError(
                f"input vector of shape {vector.shape} does not match matrix rows ({rows})"
            )
        plan = self.sharded_plan(allocation)

        def call(task: ShardTask) -> np.ndarray:
            return self.devices[task.device_index].exec_mvm(
                task.device_allocation, vector[task.row_start: task.row_end],
                input_bits=input_bits,
            )

        def verify_input(task: ShardTask) -> np.ndarray:
            return vector[task.row_start: task.row_end]

        result = np.zeros(cols, dtype=np.int64)
        for position in range(plan.num_shards):
            result += self._run_shard_with_retry(
                plan, position, call, verify_input=verify_input
            )
        return result

    def _fanout_executor(self) -> ThreadPoolExecutor:
        """The shared worker pool for multi-device fan-out (built lazily)."""
        if self._executor is None:
            workers = self._max_workers if self._max_workers else self.num_devices
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, workers), thread_name_prefix="pum-pool"
            )
        return self._executor

    def close(self) -> None:
        """Release the fan-out worker threads (idempotent).

        The pool stays usable afterwards -- the executor is rebuilt lazily
        on the next multi-device call -- but long-lived processes that churn
        through many pools should close each one (or use the pool as a
        context manager) so idle worker threads do not accumulate until
        interpreter shutdown.  Safe to call repeatedly and after a failed
        fan-out: the executor reference is detached before shutdown, so even
        a shutdown that raises leaves the pool consistent, and a fan-out
        failure (which joins every sibling worker before re-raising) never
        leaves orphaned work behind for ``close`` to trip over.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "DevicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_device_tasks(self, tasks_by_device: Dict[int, List], run) -> Dict:
        """Execute per-device task lists, one worker per device, and collect.

        ``run(device_index, task)`` performs one task on one device; a
        device's tasks always run sequentially on a single worker (devices
        are not thread-safe), while distinct devices proceed concurrently.
        Returns ``{key: value}`` merged from every ``run`` result.
        """
        def drain(device_index: int):
            return [run(device_index, task) for task in tasks_by_device[device_index]]

        results: Dict = {}
        if self.parallel and len(tasks_by_device) > 1:
            executor = self._fanout_executor()
            futures = [
                executor.submit(drain, device_index)
                for device_index in sorted(tasks_by_device)
            ]
            # Join every worker before propagating a failure: re-raising
            # while a sibling is still running would let the next call's
            # worker share its device with this one, breaking the
            # one-worker-per-device invariant the fan-out relies on.
            first_error: Optional[BaseException] = None
            for future in futures:
                try:
                    for key, value in future.result():
                        results[key] = value
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
        else:
            for device_index in sorted(tasks_by_device):
                for key, value in drain(device_index):
                    results[key] = value
        return results

    def exec_mvm_batch(
        self,
        allocation: PooledAllocation,
        vectors: np.ndarray,
        input_bits: int = 8,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> np.ndarray:
        """Map-reduce a batch of MVMs over the allocation's shards.

        Every shard's device executes its row band for the whole batch in
        one :meth:`~repro.runtime.session.DarthPumDevice.exec_mvm_batch`
        pass, fanning out over the cached :class:`ShardedPlan` (zero
        per-request planning).  Shards living on different devices run
        concurrently on the fan-out thread pool (NumPy releases the GIL);
        the full-width partial results are summed in shard order, so the
        output is identical to the serial schedule.
        """
        backend = backend if backend is not None else self.backend
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
        rows, cols = allocation.shape
        if vectors.shape[1] != rows:
            raise QuantizationError(
                f"input batch of shape {vectors.shape} does not match matrix rows ({rows})"
            )
        plan = self.sharded_plan(allocation)
        if plan.num_shards == 1:
            # Single-shard fast path (the common serving case): the device
            # result *is* the pool result -- no zero tensor, no partial-sum
            # add, and ``vectors`` (often an arena view handed down by the
            # server) flows through unsliced.  Failover still applies: the
            # retry helper is a straight call when the pool is healthy.
            def single(task: ShardTask) -> np.ndarray:
                return self.devices[task.device_index].exec_mvm_batch(
                    task.device_allocation, vectors, input_bits=input_bits,
                    backend=backend,
                )

            return self._run_shard_with_retry(
                plan, 0, single, verify_input=lambda task: vectors
            )
        result = np.zeros((vectors.shape[0], cols), dtype=np.int64)

        def run(device_index: int, item):
            position, task = item
            sub = vectors[:, task.row_start: task.row_end]
            try:
                partial = self._device_call(
                    device_index,
                    self.devices[device_index].exec_mvm_batch,
                    task.device_allocation, sub,
                    input_bits=input_bits, backend=backend,
                )
                partial = self._finish_call(plan, task, sub, partial)
            except (DeviceFailedError, IntegrityError) as exc:
                return position, _ShardFailure(task, exc)
            return position, partial

        selected = self._select_all(
            {position: (plan, position) for position in range(plan.num_shards)}
        )
        partials = self._dispatch_with_retry(selected, run)
        for position in range(plan.num_shards):
            result += partials[position]
        return result

    def exec_requests(
        self,
        requests: Sequence[Tuple[PooledAllocation, np.ndarray]],
        input_bits: int = 8,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> List[np.ndarray]:
        """Serve a list of ``(allocation, vectors)`` requests.

        Requests against matrices placed on different devices by the
        scheduler run on independent chips concurrently (one fan-out worker
        per device, each draining its share of the request list in order);
        each request's vectors go through the batched path over its cached
        :class:`ShardedPlan`.  Returns one result array per request, in
        request order, bit-identical to the serial schedule.
        """
        backend = backend if backend is not None else self.backend
        batches: List[np.ndarray] = []
        shapes: List[Tuple[int, int]] = []
        plans: List[ShardedPlan] = []
        for index, (allocation, vectors) in enumerate(requests):
            vectors = np.atleast_2d(np.asarray(vectors, dtype=np.int64))
            rows, cols = allocation.shape
            if vectors.shape[1] != rows:
                raise QuantizationError(
                    f"input batch of shape {vectors.shape} does not match "
                    f"matrix rows ({rows})"
                )
            batches.append(vectors)
            shapes.append((vectors.shape[0], cols))
            plan = self.sharded_plan(allocation)
            plans.append(plan)

        def run(device_index: int, item):
            key, task = item
            index, _position = key
            sub = batches[index][:, task.row_start: task.row_end]
            try:
                partial = self._device_call(
                    device_index,
                    self.devices[device_index].exec_mvm_batch,
                    task.device_allocation, sub,
                    input_bits=input_bits, backend=backend,
                )
                partial = self._finish_call(plans[index], task, sub, partial)
            except (DeviceFailedError, IntegrityError) as exc:
                return key, _ShardFailure(task, exc)
            return key, partial

        selected = self._select_all({
            (index, position): (plan, position)
            for index, plan in enumerate(plans)
            for position in range(plan.num_shards)
        })
        partials = self._dispatch_with_retry(selected, run)
        results: List[np.ndarray] = []
        for index, plan in enumerate(plans):
            total = np.zeros(shapes[index], dtype=np.int64)
            for position in range(plan.num_shards):
                total += partials[(index, position)]
            results.append(total)
        return results

    def release(self, allocation: PooledAllocation) -> None:
        """Free every shard (and the compiled plans) of a pooled allocation."""
        for shard, device_allocation in allocation.shards:
            self.devices[shard.device_index].release(device_allocation)
        self._allocations.pop(allocation.allocation_id, None)
        self._sharded_plans.pop(allocation.allocation_id, None)
        self.integrity.forget(allocation.allocation_id)

    # ------------------------------------------------------------------ #
    # Live shard rebuild                                                   #
    # ------------------------------------------------------------------ #
    def rebuild(self, allocation: PooledAllocation) -> RebuildReport:
        """Reprogram ``allocation``'s lost row bands onto healthy devices.

        For every band, copies living on failed devices are dropped and
        replaced (up to the pool's replication target) by fresh copies
        programmed from the retained source matrix onto healthy devices
        with free HCTs -- the analog-fabric equivalent of re-replicating a
        lost storage shard.  The new copies are spliced into the *cached*
        :class:`~repro.plan.ir.ShardedPlan` and their tile-level plans are
        compiled at every precision the allocation was already prepared
        for, so post-rebuild dispatch pays no planning stall.

        A band that cannot reach the replication target but keeps at least
        one live copy is left degraded (requests still succeed); a band
        with *zero* live copies that cannot be placed anywhere raises
        :class:`~repro.errors.RebuildError` (any copies programmed earlier
        in the same pass are rolled back).  Healthy allocations return an
        unchanged no-op report.
        """
        if allocation.matrix is None:
            raise RebuildError(
                allocation.allocation_id, -1,
                f"allocation {allocation.allocation_id} retained no source "
                f"matrix; it cannot be rebuilt",
            )
        source = allocation.matrix
        bands: Dict[Tuple[int, int], List[Tuple[Shard, MatrixAllocation]]] = {}
        for shard, device_allocation in allocation.shards:
            bands.setdefault((shard.row_start, shard.row_end), []).append(
                (shard, device_allocation)
            )
        ordered = sorted(bands)
        programmed: List[Tuple[int, MatrixAllocation]] = []
        programmed_shards: List[Shard] = []
        dropped: List[Tuple[Shard, MatrixAllocation]] = []
        rebuilt_positions: List[int] = []
        new_shards: List[Tuple[Shard, MatrixAllocation]] = []
        new_plan_tasks: Dict[int, Tuple[ShardTask, ...]] = {}
        free = [self.free_hcts(index) for index in range(self.num_devices)]
        min_copies = self.replication

        def rollback() -> None:
            for device_index, device_allocation in programmed:
                self.devices[device_index].release(device_allocation)

        try:
            for position, key in enumerate(ordered):
                row_start, row_end = key
                copies = bands[key]
                healthy = [
                    pair for pair in copies
                    if pair[0].device_index not in self._failed_devices
                ]
                lost = [
                    pair for pair in copies
                    if pair[0].device_index in self._failed_devices
                ]
                holders = [shard.device_index for shard, _ in healthy]
                needed = self._hcts_for(
                    (row_end - row_start, allocation.shape[1]),
                    allocation.element_size, allocation.precision,
                )
                fresh: List[Tuple[Shard, MatrixAllocation]] = []
                for _ in range(self.replication - len(healthy)):
                    trial = list(free)
                    for index in set(holders) | self._failed_devices:
                        if 0 <= index < len(trial):
                            trial[index] = -1
                    chosen = self.placement_policy.choose(trial, needed, holders)
                    if chosen is None:
                        break
                    block = source[row_start:row_end, :]
                    device_allocation = self.devices[chosen].set_matrix(
                        block, element_size=allocation.element_size,
                        precision=allocation.precision,
                    )
                    free[chosen] -= needed
                    holders.append(chosen)
                    programmed.append((chosen, device_allocation))
                    fresh.append((
                        Shard(device_index=chosen, row_start=row_start,
                              row_end=row_end),
                        device_allocation,
                    ))
                if not healthy and not fresh:
                    raise RebuildError(allocation.allocation_id, position)
                if fresh:
                    rebuilt_positions.append(position)
                if lost:
                    dropped.extend(lost)
                band_pairs = [
                    (Shard(device_index=shard.device_index,
                           row_start=row_start, row_end=row_end,
                           replica=replica), device_allocation)
                    for replica, (shard, device_allocation)
                    in enumerate(healthy + fresh)
                ]
                new_shards.extend(band_pairs)
                programmed_shards.extend(
                    shard for shard, _ in band_pairs[len(healthy):]
                )
                new_plan_tasks[position] = tuple(
                    ShardTask(
                        position=position,
                        device_index=shard.device_index,
                        row_start=shard.row_start,
                        row_end=shard.row_end,
                        device_allocation=device_allocation,
                        replica=shard.replica,
                    )
                    for shard, device_allocation in band_pairs
                )
                min_copies = min(min_copies, len(band_pairs))
        except ReproError:
            rollback()
            raise
        except (KeyError, IndexError) as exc:
            # Normalize: a placement policy or bookkeeping bug during the
            # no-capacity walk must surface as the documented RebuildError,
            # not leak a bare KeyError/IndexError to the caller (who is
            # often the auto-rebuild retry path matching on ReproError).
            rollback()
            raise RebuildError(
                allocation.allocation_id, -1,
                f"rebuild of allocation {allocation.allocation_id} failed "
                f"while placing replacement copies: {type(exc).__name__}: {exc}",
            ) from exc
        except Exception:
            rollback()
            raise

        report = RebuildReport(
            allocation_id=allocation.allocation_id,
            bands_rebuilt=tuple(rebuilt_positions),
            copies_programmed=tuple(programmed_shards),
            copies_dropped=tuple(shard for shard, _ in dropped),
            replication=min_copies,
        )
        if not report.changed:
            return report

        # Commit: swap the shard table, release the lost device-side
        # allocations, splice the cached plan, and warm the new copies'
        # tile plans at every already-prepared precision.
        allocation.shards = new_shards
        for shard, device_allocation in dropped:
            self.devices[shard.device_index].release(device_allocation)
        plan = self._sharded_plans.get(allocation.allocation_id)
        if plan is not None:
            for input_bits in sorted(plan.prepared_input_bits):
                for device_index, device_allocation in programmed:
                    self.devices[device_index].compile(
                        device_allocation, input_bits=input_bits
                    )
            for position, tasks in new_plan_tasks.items():
                plan.splice_band(position, tasks)
        if rebuilt_positions:
            self.rebuilds += 1
            self.bands_rebuilt += len(rebuilt_positions)
        return report

    # ------------------------------------------------------------------ #
    # Introspection / accounting                                           #
    # ------------------------------------------------------------------ #
    @property
    def allocations(self) -> List[PooledAllocation]:
        """All live pooled allocations."""
        return list(self._allocations.values())

    def utilization(self) -> List[float]:
        """Fraction of HCTs allocated on each device."""
        return [device.chip.utilization() for device in self.devices]

    def total_ledger(self) -> CostLedger:
        """Aggregated cost ledger across every chip in the pool.

        Only the chip/tile ledgers are merged: the per-device runtime
        ledgers (``device.ledger``) hold ``runtime.mvm*`` entries whose
        cycles/energy are *copies* of charges already present in the tile
        ledgers, so including them would double-count every MVM.
        """
        return merge_ledgers([device.chip.total_ledger() for device in self.devices])

    def total_energy_pj(self) -> float:
        """Pool-wide energy total, bit-identical to ``total_ledger().energy_pj``.

        Sums the per-chip totals in the same order ``total_ledger`` merges
        them, without building any breakdown dicts -- the serving scheduler
        reads this before and after every dispatched batch, so it must cost
        a handful of float additions, not a ledger merge.
        """
        total = 0.0
        for device in self.devices:
            total += device.chip.total_energy_pj()
        return total

    def expected_mvm(self, allocation: PooledAllocation, vectors: np.ndarray) -> np.ndarray:
        """Reference result reassembled from the shards' stored matrices."""
        vectors = np.asarray(vectors, dtype=np.int64)
        parts = []
        for shard, device_allocation in sorted(
            (pair for pair in allocation.shards if pair[0].replica == 0),
            key=lambda pair: pair[0].row_start,
        ):
            assert device_allocation.matrix is not None
            parts.append(device_allocation.matrix)
        matrix = np.concatenate(parts, axis=0)
        return vectors @ matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DevicePool(devices={self.num_devices}, policy={self.policy!r}, "
            f"allocations={len(self._allocations)})"
        )

"""Runtime library: the Table 1 programmer-facing API, pool, and server."""

from .allocator import MatrixPlacement, TilePlan, plan_matrix, precision_to_bits_per_cell
from .apps import (
    AesSession,
    CnnSession,
    LlmSession,
    serve_aes_mixcolumns,
    serve_cnn_conv,
    serve_llm_projection,
)
from .faults import FaultEvent, FaultInjector, FaultSchedule
from .pool import (
    CacheAffinityPolicy,
    DevicePool,
    LeastLoadedPolicy,
    PlacementPolicy,
    PooledAllocation,
    RoundRobinPolicy,
    Shard,
    make_placement_policy,
)
from .queueing import (
    FlatRequestQueue,
    IndexedRequestQueue,
    RequestQueue,
    make_request_queue,
)
from .server import (
    BatchingConfig,
    PumServer,
    Request,
    Response,
    ServerFuture,
    ServingStats,
    ThreadedServerDriver,
)
from .session import DarthPumDevice, MatrixAllocation

__all__ = [
    "AesSession",
    "BatchingConfig",
    "CacheAffinityPolicy",
    "CnnSession",
    "DarthPumDevice",
    "DevicePool",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FlatRequestQueue",
    "IndexedRequestQueue",
    "LeastLoadedPolicy",
    "LlmSession",
    "MatrixAllocation",
    "MatrixPlacement",
    "PlacementPolicy",
    "PooledAllocation",
    "PumServer",
    "Request",
    "RequestQueue",
    "Response",
    "RoundRobinPolicy",
    "ServerFuture",
    "ServingStats",
    "Shard",
    "ThreadedServerDriver",
    "TilePlan",
    "make_placement_policy",
    "make_request_queue",
    "plan_matrix",
    "precision_to_bits_per_cell",
    "serve_aes_mixcolumns",
    "serve_cnn_conv",
    "serve_llm_projection",
]

"""Runtime library: the Table 1 programmer-facing API plus the serving pool."""

from .allocator import MatrixPlacement, TilePlan, plan_matrix, precision_to_bits_per_cell
from .apps import AesSession, CnnSession, LlmSession
from .pool import DevicePool, PooledAllocation, Shard
from .session import DarthPumDevice, MatrixAllocation

__all__ = [
    "AesSession",
    "CnnSession",
    "DevicePool",
    "LlmSession",
    "DarthPumDevice",
    "MatrixAllocation",
    "MatrixPlacement",
    "PooledAllocation",
    "Shard",
    "TilePlan",
    "plan_matrix",
    "precision_to_bits_per_cell",
]

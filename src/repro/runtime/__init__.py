"""Runtime library: the Table 1 programmer-facing API."""

from .allocator import MatrixPlacement, TilePlan, plan_matrix, precision_to_bits_per_cell
from .apps import AesSession, CnnSession, LlmSession
from .session import DarthPumDevice, MatrixAllocation

__all__ = [
    "AesSession",
    "CnnSession",
    "LlmSession",
    "DarthPumDevice",
    "MatrixAllocation",
    "MatrixPlacement",
    "TilePlan",
    "plan_matrix",
    "precision_to_bits_per_cell",
]

"""RACER-style bit-pipelined digital PUM pipeline.

A pipeline of depth ``B`` is built from ``B`` digital PUM arrays; an
``B``-bit value is *bit-striped* across the arrays so that array ``b`` holds
bit ``b`` of every value (Section 2.2.2, Figure 5).  Columns play the role of
*vector registers* (VRs): VR ``v`` element ``e`` bit ``b`` lives at
``arrays[b].bits[e, v]``.  Because every array can execute a different µop,
a stream of word-level operations achieves up to ``B`` times the throughput
of a single array (bit-pipelining).

The pipeline is a *functional* model: word-level operations really execute
the underlying NOR-sequence gate networks on the stored bits, so results are
bit-exact, while the :class:`~repro.digital.microops.WordOpCost` records
returned by every operation drive the cycle/energy model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import CapacityError, ConfigurationError, ExecutionError
from ..metrics import CostLedger
from .alu import BooleanSynthesizer, ScratchColumns
from .array import DigitalArray
from .logic import LogicFamily, oscar_family
from .microops import WordOpCost, WordOpKind

__all__ = ["BitPipeline"]


class BitPipeline:
    """A bit-pipelined stack of digital PUM arrays with vector registers.

    Class attributes
    ----------------
    WRITE_ENERGY_PJ:
        Energy per device write (one bit of one row), shared by every code
        path that charges write/move energy so the gate-exact and batched
        accounting stay in lockstep.

    Parameters
    ----------
    depth:
        Number of arrays, i.e. the operand bit width (Table 2: 64).
    rows:
        Elements per vector register (Table 2: 64, the array height).
    cols:
        Columns per array; ``cols - ScratchColumns.COUNT`` columns are
        available as vector registers.
    family:
        Digital logic family (defaults to OSCAR).
    ledger:
        Cost ledger shared with the enclosing DCE/HCT.  If omitted a private
        ledger is created.
    auto_cycles:
        When true (the default) each word-level operation immediately
        charges its un-pipelined latency.  The DCE/HCT schedulers disable
        this and charge pipelined stream totals instead.
    """

    #: Energy per device write (pJ), one bit of one row.
    WRITE_ENERGY_PJ = 0.005

    def __init__(
        self,
        depth: int = 64,
        rows: int = 64,
        cols: int = 64,
        family: Optional[LogicFamily] = None,
        ledger: Optional[CostLedger] = None,
        auto_cycles: bool = True,
    ) -> None:
        if depth < 1:
            raise ConfigurationError("pipeline depth must be >= 1")
        self.depth = int(depth)
        self.rows = int(rows)
        self.cols = int(cols)
        self.family = family if family is not None else oscar_family()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.auto_cycles = bool(auto_cycles)
        self.scratch = ScratchColumns.at_top_of(self.cols)
        self.num_vrs = self.cols - ScratchColumns.COUNT
        self.arrays: List[DigitalArray] = [
            DigitalArray(self.rows, self.cols, self.family, self.ledger)
            for _ in range(self.depth)
        ]
        self._synth = BooleanSynthesizer(self.family)
        #: Chronological record of every word-level operation's cost.
        self.op_log: List[WordOpCost] = []
        #: Shift/rotate propagation direction; reversing it costs a drain.
        self.direction = "right"
        #: Registers marked dead by a pipeline-reserve instruction.
        self.reserved = False

    # ------------------------------------------------------------------ #
    # Vector register access                                               #
    # ------------------------------------------------------------------ #
    def _check_vr(self, vr: int) -> None:
        if not 0 <= vr < self.num_vrs:
            raise CapacityError(f"vector register {vr} out of range [0, {self.num_vrs})")

    def write_vr(self, vr: int, values: Sequence[int], charge: bool = True) -> WordOpCost:
        """Write integer ``values`` into VR ``vr`` (one row per element).

        The pipeline's write port accepts one row per cycle (Section 4.1),
        so writing a full register costs ``rows`` cycles.
        """
        values = np.asarray(values, dtype=np.int64)
        self.set_vr_bits(vr, values)
        cost = WordOpCost("write_vr", WordOpKind.WRITE, 1.0, self.depth, self.rows)
        self._account(cost, energy_rows=values.shape[0], charge=charge)
        return cost

    def set_vr_bits(self, vr: int, values: Sequence[int]) -> None:
        """Overwrite a VR's bit planes in one vectorised pass, charging nothing.

        The single shared implementation of the bit-plane unpack: cost-free
        state updates (element-wise ops, the batched reduction's accumulator
        sync) call it directly, and :meth:`write_vr` layers the write cost on
        top.  Rows beyond ``len(values)`` are cleared.
        """
        self._check_vr(vr)
        values = np.asarray(values, dtype=np.int64)
        if values.shape[0] > self.rows:
            raise CapacityError(
                f"vector of {values.shape[0]} elements exceeds {self.rows} rows"
            )
        mask = np.int64((1 << self.depth) - 1) if self.depth < 64 else np.int64(-1)
        unsigned = values & mask
        columns = np.zeros((self.depth, self.rows), dtype=bool)
        columns[:, : values.shape[0]] = (
            (unsigned[None, :] >> np.arange(self.depth, dtype=np.int64)[:, None]) & 1
        ).astype(bool)
        # Direct bit-plane stores: the cost-free state update runs once per
        # dispatched serving batch, so it skips write_column's per-call
        # validation (vr is already checked, columns is the right shape by
        # construction).
        for bit in range(self.depth):
            self.arrays[bit].bits[:, vr] = columns[bit]

    def read_vr(self, vr: int, signed: bool = False) -> np.ndarray:
        """Read VR ``vr`` back as integers (two's complement if ``signed``)."""
        self._check_vr(vr)
        values = np.zeros(self.rows, dtype=np.int64)
        for bit in range(self.depth):
            values |= self.arrays[bit].read_column(vr).astype(np.int64) << bit
        if signed and self.depth < 64:
            sign = np.int64(1) << (self.depth - 1)
            values = (values ^ sign) - sign
        return values

    def read_element(self, vr: int, row: int) -> int:
        """Read a single element (used by element-wise load/store)."""
        self._check_vr(vr)
        value = 0
        for bit in range(self.depth):
            value |= int(self.arrays[bit].bits[row, vr]) << bit
        return value

    def write_element(self, vr: int, row: int, value: int) -> None:
        """Write a single element (used by element-wise load/store)."""
        self._check_vr(vr)
        for bit in range(self.depth):
            self.arrays[bit].bits[row, vr] = bool((value >> bit) & 1)

    def clear_vr(self, vr: int) -> WordOpCost:
        """Zero a vector register (bulk bitline reset, one cycle per array)."""
        self._check_vr(vr)
        for array in self.arrays:
            array.clear_column(vr)
        cost = WordOpCost("clear_vr", WordOpKind.BITWISE, 1.0, self.depth, self.rows)
        self._account(cost)
        return cost

    # ------------------------------------------------------------------ #
    # Bitwise word operations                                              #
    # ------------------------------------------------------------------ #
    def copy(self, dst: int, src: int) -> WordOpCost:
        """dst = src."""
        return self._bitwise("copy", dst, src, src, self._synth.copy_col, unary=True)

    def not_(self, dst: int, src: int) -> WordOpCost:
        """dst = ~src (bitwise complement)."""
        return self._bitwise("not", dst, src, src, self._synth.not_col, unary=True)

    def xor(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = a ^ b."""
        return self._bitwise("xor", dst, a, b, None, op="xor")

    def and_(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = a & b."""
        return self._bitwise("and", dst, a, b, None, op="and")

    def or_(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = a | b."""
        return self._bitwise("or", dst, a, b, None, op="or")

    def nor(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = ~(a | b)."""
        return self._bitwise("nor", dst, a, b, None, op="nor")

    def _bitwise(self, name, dst, a, b, unary_fn, unary=False, op=None) -> WordOpCost:
        for vr in {dst, a, b}:
            self._check_vr(vr)
        uops = 0
        for array in self.arrays:
            if unary:
                uops_bit = unary_fn(array, a, dst)
            elif op == "xor":
                uops_bit = self._synth.xor_col(array, a, b, dst, self.scratch)
            elif op == "and":
                uops_bit = self._synth.and_col(array, a, b, dst, self.scratch)
            elif op == "or":
                uops_bit = self._synth.or_col(array, a, b, dst)
            elif op == "nor":
                uops_bit = self._synth.nor_col(array, a, b, dst)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown bitwise op {name}")
            uops = uops_bit
        cost = WordOpCost(name, WordOpKind.BITWISE, float(uops), self.depth, self.rows)
        self._account(cost)
        return cost

    # ------------------------------------------------------------------ #
    # Arithmetic word operations                                           #
    # ------------------------------------------------------------------ #
    def add(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = a + b (modulo 2**depth), ripple carry through the arrays."""
        return self._ripple_add("add", dst, a, b, initial_carry=False, invert_b=False)

    def sub(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = a - b (two's complement)."""
        return self._ripple_add("sub", dst, a, b, initial_carry=True, invert_b=True)

    def _ripple_add(self, name, dst, a, b, initial_carry, invert_b) -> WordOpCost:
        for vr in {dst, a, b}:
            self._check_vr(vr)
        s = self.scratch
        carry = np.full(self.rows, initial_carry, dtype=bool)
        uops_per_bit = 0
        for array in self.arrays:
            array.write_column(s.carry_in, carry)
            b_col = b
            extra = 0
            if invert_b:
                extra = self._synth.not_col(array, b, s.t5)
                b_col = s.t5
            uops_per_bit = extra + self._synth.full_adder(array, a, b_col, dst, s)
            carry = array.read_column(s.carry_out)
        cost = WordOpCost(name, WordOpKind.CARRY, float(uops_per_bit), self.depth, self.rows)
        self._account(cost)
        return cost

    def increment(self, dst: int, src: int) -> WordOpCost:
        """dst = src + 1 using the carry-in of the ripple adder."""
        self._check_vr(dst)
        self._check_vr(src)
        s = self.scratch
        carry = np.ones(self.rows, dtype=bool)
        uops_per_bit = 0
        for array in self.arrays:
            array.write_column(s.carry_in, carry)
            array.clear_column(s.t5)
            uops_per_bit = self._synth.full_adder(array, src, s.t5, dst, s)
            carry = array.read_column(s.carry_out)
        cost = WordOpCost("increment", WordOpKind.CARRY, float(uops_per_bit), self.depth, self.rows)
        self._account(cost)
        return cost

    def compare_lt(self, dst: int, a: int, b: int) -> WordOpCost:
        """dst = (a < b) ? 1 : 0, treating operands as unsigned.

        Computed as the final borrow of ``a - b``; the 0/1 flag is placed in
        bit 0 of ``dst`` and all other bits are cleared.
        """
        for vr in {dst, a, b}:
            self._check_vr(vr)
        s = self.scratch
        carry = np.ones(self.rows, dtype=bool)
        uops_per_bit = 0
        for array in self.arrays:
            array.write_column(s.carry_in, carry)
            extra = self._synth.not_col(array, b, s.t5)
            uops_per_bit = extra + self._synth.full_adder(array, a, s.t5, s.t4, s)
            carry = array.read_column(s.carry_out)
        borrow = ~carry  # no final carry => a < b
        for array in self.arrays:
            array.clear_column(dst)
        self.arrays[0].write_column(dst, borrow)
        cost = WordOpCost(
            "compare_lt", WordOpKind.CARRY, float(uops_per_bit + 1), self.depth, self.rows
        )
        self._account(cost)
        return cost

    def mux(self, dst: int, select: int, when_true: int, when_false: int) -> WordOpCost:
        """Per-element select: ``dst = select ? when_true : when_false``.

        ``select`` is interpreted per element: any non-zero value selects
        ``when_true``.  The select flag is broadcast from bit 0.
        """
        for vr in {dst, select, when_true, when_false}:
            self._check_vr(vr)
        flag = self.read_vr(select) != 0
        uops_per_bit = 0
        for array in self.arrays:
            array.write_column(self.scratch.t5, flag)
            uops_per_bit = self._synth.mux_col(
                array, self.scratch.t5, when_true, when_false, dst, self.scratch
            )
        # Broadcasting the flag to every array is a shift-class traversal.
        broadcast = WordOpCost("mux_broadcast", WordOpKind.SHIFT, 1.0, self.depth, self.rows)
        compute = WordOpCost("mux", WordOpKind.BITWISE, float(uops_per_bit), self.depth, self.rows)
        self._account(broadcast)
        self._account(compute)
        return compute

    def relu(self, dst: int, src: int) -> WordOpCost:
        """dst = max(src, 0) for signed two's-complement values."""
        self._check_vr(dst)
        self._check_vr(src)
        sign = self.arrays[self.depth - 1].read_column(src)
        keep = ~sign
        uops_per_bit = 0
        for array in self.arrays:
            array.write_column(self.scratch.t5, keep)
            uops_per_bit = self._synth.and_col(array, src, self.scratch.t5, dst, self.scratch)
        broadcast = WordOpCost("relu_broadcast", WordOpKind.SHIFT, 1.0, self.depth, self.rows)
        compute = WordOpCost("relu", WordOpKind.BITWISE, float(uops_per_bit), self.depth, self.rows)
        self._account(broadcast)
        self._account(compute)
        return compute

    def max_(self, dst: int, a: int, b: int) -> List[WordOpCost]:
        """dst = max(a, b) element-wise (unsigned), via compare + mux."""
        free = self._free_scratch_vr((dst, a, b))
        costs = [self.compare_lt(free, a, b)]
        costs.append(self.mux(dst, free, b, a))
        return costs

    def multiply(self, dst: int, a: int, b: int, bits: Optional[int] = None) -> List[WordOpCost]:
        """dst = a * b (modulo 2**depth) via shift-and-add long multiplication.

        ``bits`` limits the number of multiplier bits considered (defaults to
        the full pipeline depth).  Bit-serial multiplication is the expensive
        digital-PUM path that the analog compute element exists to avoid.
        """
        for vr in {dst, a, b}:
            self._check_vr(vr)
        bits = self.depth if bits is None else int(bits)
        acc = self._free_scratch_vr((dst, a, b))
        partial = self._free_scratch_vr((dst, a, b, acc))
        costs: List[WordOpCost] = [self.clear_vr(acc)]
        for bit in range(bits):
            flag = self.arrays[bit].read_column(b)
            uops_per_bit = 0
            for array in self.arrays:
                array.write_column(self.scratch.t5, flag)
                uops_per_bit = self._synth.and_col(
                    array, a, self.scratch.t5, partial, self.scratch
                )
            costs.append(
                WordOpCost("mul_mask", WordOpKind.BITWISE, float(uops_per_bit), self.depth, self.rows)
            )
            self._account(costs[-1])
            if bit:
                costs.append(self.shift_value_left(partial, partial, bit))
            costs.append(self.add(acc, acc, partial))
        costs.append(self.copy(dst, acc))
        return costs

    # ------------------------------------------------------------------ #
    # Shifts, rotations, pipeline reversal                                 #
    # ------------------------------------------------------------------ #
    def shift_value_left(self, dst: int, src: int, amount: int) -> WordOpCost:
        """dst = src << amount (bits move toward higher-index arrays)."""
        return self._shift(dst, src, amount, left=True, rotate=False)

    def shift_value_right(self, dst: int, src: int, amount: int) -> WordOpCost:
        """dst = src >> amount (logical shift)."""
        return self._shift(dst, src, amount, left=False, rotate=False)

    def rotate_value_left(self, dst: int, src: int, amount: int) -> WordOpCost:
        """dst = rotate_left(src, amount) over ``depth`` bits."""
        return self._shift(dst, src, amount, left=True, rotate=True)

    def rotate_value_right(self, dst: int, src: int, amount: int) -> WordOpCost:
        """dst = rotate_right(src, amount) over ``depth`` bits."""
        return self._shift(dst, src, amount, left=False, rotate=True)

    def _shift(self, dst: int, src: int, amount: int, left: bool, rotate: bool) -> WordOpCost:
        self._check_vr(dst)
        self._check_vr(src)
        if amount < 0:
            raise ExecutionError("shift amount must be non-negative")
        amount = amount % self.depth if rotate else min(amount, self.depth)
        columns = [array.read_column(src) for array in self.arrays]
        zero = np.zeros(self.rows, dtype=bool)
        new_columns: List[np.ndarray] = []
        for bit in range(self.depth):
            if left:
                source_bit = bit - amount
            else:
                source_bit = bit + amount
            if rotate:
                new_columns.append(columns[source_bit % self.depth])
            elif 0 <= source_bit < self.depth:
                new_columns.append(columns[source_bit])
            else:
                new_columns.append(zero)
        for bit, column in enumerate(new_columns):
            self.arrays[bit].write_column(dst, column)

        # Shifting against the pipeline's propagation direction requires the
        # pipeline-reversal macro: drain, reverse, propagate (Section 5.3).
        reversal_penalty = 0.0
        needs_left = left
        if (needs_left and self.direction == "right") or (not needs_left and self.direction == "left"):
            reversal_penalty = float(self.depth)
            self.direction = "left" if needs_left else "right"
        name = ("rotate" if rotate else "shift") + ("_left" if left else "_right")
        cost = WordOpCost(
            name,
            WordOpKind.SHIFT,
            1.0,
            int(amount + reversal_penalty) if amount or reversal_penalty else 1,
            self.rows,
        )
        self._account(cost)
        return cost

    def reverse_direction(self) -> WordOpCost:
        """Explicit pipeline reversal macro: drain, then propagate in reverse."""
        self.direction = "left" if self.direction == "right" else "right"
        cost = WordOpCost("pipeline_reverse", WordOpKind.SHIFT, 1.0, self.depth, self.rows)
        self._account(cost)
        return cost

    # ------------------------------------------------------------------ #
    # Accounting                                                           #
    # ------------------------------------------------------------------ #
    def _account(self, cost: WordOpCost, energy_rows: Optional[int] = None, charge: bool = True) -> None:
        self.op_log.append(cost)
        if cost.kind in (WordOpKind.WRITE, WordOpKind.SHIFT, WordOpKind.ELEMENT):
            rows = energy_rows if energy_rows is not None else self.rows
            # Writes/moves touch one device per bit per row.
            self.ledger.charge(
                f"dce.{cost.kind.value}", energy_pj=self.WRITE_ENERGY_PJ * rows * cost.bits
            )
        if charge and self.auto_cycles:
            self.ledger.charge(f"dce.{cost.name}", cycles=cost.unpipelined_cycles)

    def charge_stream(self, costs: Sequence[WordOpCost], category: str = "dce.stream") -> float:
        """Charge a pipelined stream of already-executed operations.

        Used by schedulers that run with ``auto_cycles=False``; returns the
        number of cycles charged.
        """
        from .microops import stream_cycles

        cycles = stream_cycles(list(costs), pipelined=True)
        self.ledger.charge(category, cycles=cycles)
        return cycles

    def _free_scratch_vr(self, in_use: Sequence[int]) -> int:
        """Find a VR not in ``in_use`` to use as a temporary (highest first)."""
        used = set(in_use)
        for vr in range(self.num_vrs - 1, -1, -1):
            if vr not in used:
                return vr
        raise CapacityError("no free vector register available for a temporary")

    @property
    def add_uops_per_bit(self) -> int:
        """µops one ripple-carry ADD executes per bit position.

        Used by the batched execution engine to reconstruct the cost of an
        ADD stream without running the gate networks element by element.
        """
        return self._synth.uops_per_full_adder

    @property
    def total_uops(self) -> int:
        """Total µops executed across all arrays."""
        return sum(array.uop_count for array in self.arrays)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitPipeline(depth={self.depth}, rows={self.rows}, cols={self.cols}, "
            f"family={self.family.name})"
        )

"""A single digital PUM ReRAM array.

A digital PUM array stores one bit per device and executes Boolean
primitives *between columns* (bitlines): activating the wordlines of the
whole array applies the same primitive to every row in parallel
(Section 2.2.2, Figure 4).  In the RACER organisation adopted by DARTH-PUM,
each array of a bit pipeline holds a single bit position of every value, so
its columns are "bit slices" of vector registers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError, ExecutionError
from ..metrics import CostLedger
from .logic import LogicFamily
from .microops import MicroOp

__all__ = ["DigitalArray"]


class DigitalArray:
    """A ``rows x cols`` single-level-cell ReRAM array used for Boolean PUM.

    Parameters
    ----------
    rows, cols:
        Array geometry.  Rows correspond to vector elements, columns to
        vector registers (plus scratch columns).
    family:
        The logic family providing the native primitives.
    ledger:
        Optional ledger that receives the energy of every executed µop.
        Cycle accounting is performed at the pipeline level because it
        depends on how operations overlap across arrays.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        family: LogicFamily,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError("array dimensions must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.family = family
        self.ledger = ledger if ledger is not None else CostLedger()
        self._bits = np.zeros((self.rows, self.cols), dtype=bool)
        #: Number of µops executed on this array (for utilisation stats).
        self.uop_count = 0

    # ------------------------------------------------------------------ #
    # Raw data access                                                     #
    # ------------------------------------------------------------------ #
    @property
    def bits(self) -> np.ndarray:
        """The raw bit matrix (rows x cols).  Mutating it bypasses costs."""
        return self._bits

    def read_column(self, col: int) -> np.ndarray:
        """Return a copy of column ``col`` (all rows)."""
        self._check_col(col)
        return self._bits[:, col].copy()

    def write_column(self, col: int, values: np.ndarray) -> None:
        """Overwrite column ``col`` with ``values`` (boolean, length rows)."""
        self._check_col(col)
        values = np.asarray(values, dtype=bool)
        if values.shape != (self.rows,):
            raise ExecutionError(
                f"column write expects shape ({self.rows},), got {values.shape}"
            )
        self._bits[:, col] = values

    def read_row(self, row: int) -> np.ndarray:
        """Return a copy of row ``row`` (all columns)."""
        self._check_row(row)
        return self._bits[row, :].copy()

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Overwrite row ``row`` with ``values`` (boolean, length cols)."""
        self._check_row(row)
        values = np.asarray(values, dtype=bool)
        if values.shape != (self.cols,):
            raise ExecutionError(
                f"row write expects shape ({self.cols},), got {values.shape}"
            )
        self._bits[row, :] = values

    def clear_column(self, col: int) -> None:
        """Reset a column to all zeros (bulk erase of one bitline)."""
        self._check_col(col)
        self._bits[:, col] = False

    # ------------------------------------------------------------------ #
    # Boolean primitive execution                                         #
    # ------------------------------------------------------------------ #
    def execute(self, uop: MicroOp) -> float:
        """Execute one µop; returns its latency in cycles.

        The energy (per-row constant times the number of rows) is charged to
        the array's ledger under the ``"dce.boolean"`` category.
        """
        if not self.family.has(uop.primitive):
            raise ExecutionError(
                f"primitive {uop.primitive!r} is not supported by the "
                f"{self.family.name!r} logic family"
            )
        self._check_col(uop.src1)
        self._check_col(uop.src2)
        self._check_col(uop.dst)
        primitive = self.family.primitive(uop.primitive)
        a = self._bits[:, uop.src1]
        b = self._bits[:, uop.src2]
        self._bits[:, uop.dst] = primitive.evaluate(a, b)
        self.uop_count += 1
        self.ledger.charge(
            "dce.boolean", energy_pj=primitive.energy_per_row_pj * self.rows
        )
        return primitive.latency_cycles

    # ------------------------------------------------------------------ #
    # Helpers                                                             #
    # ------------------------------------------------------------------ #
    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.cols:
            raise ExecutionError(f"column index {col} out of range [0, {self.cols})")

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ExecutionError(f"row index {row} out of range [0, {self.rows})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DigitalArray(rows={self.rows}, cols={self.cols}, family={self.family.name})"

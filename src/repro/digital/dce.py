"""The Digital Compute Element (DCE) of a hybrid compute tile.

A DCE bundles 64 RACER-style bit pipelines with the control circuitry that
dispatches µops to them (Table 2).  Beyond plain RACER, DARTH-PUM's DCE adds
*element-wise loads and stores* (Section 4.2): a pipeline can use the values
stored in one of its vector registers as row addresses into another pipeline
of the same HCT, which is how the AES S-box lookup avoids the prohibitively
expensive copy+mask+AND sequence RACER would otherwise need.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, ConfigurationError, ExecutionError
from ..metrics import CostLedger
from .logic import LogicFamily, oscar_family
from .microops import WordOpCost, WordOpKind, stream_cycles
from .pipeline import BitPipeline

__all__ = ["DigitalComputeElement", "DceConfig"]


class DceConfig:
    """Geometry of a digital compute element (Table 2 defaults)."""

    def __init__(
        self,
        num_pipelines: int = 64,
        pipeline_depth: int = 64,
        rows: int = 64,
        cols: int = 64,
        issue_queue_depth: int = 64,
    ) -> None:
        if num_pipelines < 1:
            raise ConfigurationError("a DCE needs at least one pipeline")
        self.num_pipelines = int(num_pipelines)
        self.pipeline_depth = int(pipeline_depth)
        self.rows = int(rows)
        self.cols = int(cols)
        self.issue_queue_depth = int(issue_queue_depth)

    @property
    def arrays_per_pipeline(self) -> int:
        """Number of digital PUM arrays in one pipeline."""
        return self.pipeline_depth

    @property
    def total_arrays(self) -> int:
        """Total digital PUM arrays in the DCE."""
        return self.num_pipelines * self.pipeline_depth

    @property
    def capacity_bits(self) -> int:
        """Raw storage capacity of the DCE in bits."""
        return self.total_arrays * self.rows * self.cols


class DigitalComputeElement:
    """A collection of bit pipelines plus dispatch and element-wise access.

    Parameters
    ----------
    config:
        DCE geometry.
    family:
        Digital logic family shared by every pipeline.
    ledger:
        Cost ledger shared with the enclosing HCT.
    lazy:
        When true (default), pipelines are instantiated on first use, which
        keeps chip-scale experiments cheap: a full Table-2 DCE holds 4096
        arrays and most experiments touch only a few pipelines.
    """

    def __init__(
        self,
        config: Optional[DceConfig] = None,
        family: Optional[LogicFamily] = None,
        ledger: Optional[CostLedger] = None,
        lazy: bool = True,
        auto_cycles: bool = True,
    ) -> None:
        self.config = config if config is not None else DceConfig()
        self.family = family if family is not None else oscar_family()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.auto_cycles = bool(auto_cycles)
        self._lazy = bool(lazy)
        self._pipelines: Dict[int, BitPipeline] = {}
        if not lazy:
            for index in range(self.config.num_pipelines):
                self._materialise(index)
        #: Pipelines reserved (marked dead) by a pipeline-reserve instruction.
        self._reserved: set = set()

    # ------------------------------------------------------------------ #
    # Pipeline management                                                  #
    # ------------------------------------------------------------------ #
    def _materialise(self, index: int) -> BitPipeline:
        if not 0 <= index < self.config.num_pipelines:
            raise CapacityError(
                f"pipeline index {index} out of range [0, {self.config.num_pipelines})"
            )
        if index not in self._pipelines:
            self._pipelines[index] = BitPipeline(
                depth=self.config.pipeline_depth,
                rows=self.config.rows,
                cols=self.config.cols,
                family=self.family,
                ledger=self.ledger,
                auto_cycles=self.auto_cycles,
            )
        return self._pipelines[index]

    def pipeline(self, index: int) -> BitPipeline:
        """Return pipeline ``index``, creating it on first use."""
        return self._materialise(index)

    @property
    def active_pipelines(self) -> Tuple[int, ...]:
        """Indices of pipelines that have been touched so far."""
        return tuple(sorted(self._pipelines))

    def reserve_pipeline(self, index: int) -> None:
        """Pipeline-reserve instruction: mark all data in a pipeline dead.

        The MVM reduction sequence may need up to N temporary registers for
        an N-bit input; reserving a pipeline guarantees the analog side can
        stream partial products into it without corrupting live values
        (Section 4.2).
        """
        self._materialise(index)
        self._reserved.add(index)
        self.pipeline(index).reserved = True

    def release_pipeline(self, index: int) -> None:
        """Release a previously reserved pipeline."""
        self._reserved.discard(index)
        if index in self._pipelines:
            self._pipelines[index].reserved = False

    def is_reserved(self, index: int) -> bool:
        """Whether a pipeline is currently reserved for analog output."""
        return index in self._reserved

    # ------------------------------------------------------------------ #
    # Element-wise load/store (Section 4.2)                                #
    # ------------------------------------------------------------------ #
    def element_load(
        self,
        dst_pipeline: int,
        dst_vr: int,
        addr_pipeline: int,
        addr_vr: int,
        table_pipeline: int,
        table_base_vr: int = 0,
        num_elements: Optional[int] = None,
    ) -> WordOpCost:
        """Gather: ``dst[e] = table[addr[e]]`` one element per two cycles.

        Each element of the address register selects a row in the table
        pipeline: row ``addr % rows`` of VR ``table_base_vr + addr // rows``.
        The address range is limited to pipelines within the same HCT.
        """
        dst = self.pipeline(dst_pipeline)
        addr = self.pipeline(addr_pipeline)
        table = self.pipeline(table_pipeline)
        rows = dst.rows
        count = rows if num_elements is None else int(num_elements)
        if count > rows:
            raise ExecutionError("cannot gather more elements than pipeline rows")
        addresses = addr.read_vr(addr_vr)[:count].astype(np.int64)
        table_vrs = table_base_vr + addresses // table.rows
        table_rows = addresses % table.rows
        if np.any(table_vrs >= table.num_vrs):
            bad = int(addresses[np.argmax(table_vrs >= table.num_vrs)])
            raise ExecutionError(
                f"address {bad} exceeds the table stored in pipeline "
                f"{table_pipeline}"
            )
        # Gather all elements of each referenced table register at once
        # instead of reading the table one element at a time.
        values = np.zeros(count, dtype=np.int64)
        for vr in np.unique(table_vrs):
            selected = table_vrs == vr
            values[selected] = table.read_vr(int(vr))[table_rows[selected]]
        updated = dst.read_vr(dst_vr)
        updated[:count] = values
        self._write_vr_raw(dst, dst_vr, updated)
        cost = WordOpCost("element_load", WordOpKind.ELEMENT, 1.0, dst.depth, count)
        self._charge(cost, dst)
        return cost

    def element_store(
        self,
        src_pipeline: int,
        src_vr: int,
        addr_pipeline: int,
        addr_vr: int,
        table_pipeline: int,
        table_base_vr: int = 0,
        num_elements: Optional[int] = None,
    ) -> WordOpCost:
        """Scatter: ``table[addr[e]] = src[e]`` one element per two cycles."""
        src = self.pipeline(src_pipeline)
        addr = self.pipeline(addr_pipeline)
        table = self.pipeline(table_pipeline)
        count = src.rows if num_elements is None else int(num_elements)
        addresses = addr.read_vr(addr_vr)[:count].astype(np.int64)
        values = src.read_vr(src_vr)[:count]
        table_vrs = table_base_vr + addresses // table.rows
        table_rows = addresses % table.rows
        if np.any(table_vrs >= table.num_vrs):
            bad = int(addresses[np.argmax(table_vrs >= table.num_vrs)])
            raise ExecutionError(
                f"address {bad} exceeds the table stored in pipeline "
                f"{table_pipeline}"
            )
        # Scatter into each referenced table register in one shot.  Elements
        # are processed in issue order, so duplicate addresses keep the
        # last-writer-wins semantics of the element-at-a-time loop.
        for vr in np.unique(table_vrs):
            selected = np.flatnonzero(table_vrs == vr)
            updated = table.read_vr(int(vr))
            updated[table_rows[selected]] = values[selected]
            self._write_vr_raw(table, int(vr), updated)
        cost = WordOpCost("element_store", WordOpKind.ELEMENT, 1.0, src.depth, count)
        self._charge(cost, src)
        return cost

    def copy_vr_between_pipelines(
        self, src_pipeline: int, src_vr: int, dst_pipeline: int, dst_vr: int
    ) -> WordOpCost:
        """Vector copy between two pipelines of the same DCE (RACER COPY)."""
        src = self.pipeline(src_pipeline)
        dst = self.pipeline(dst_pipeline)
        if src.depth != dst.depth:
            raise ExecutionError("pipelines must have matching depths to copy")
        values = src.read_vr(src_vr)
        dst.write_vr(dst_vr, values, charge=False)
        cost = WordOpCost("copy_vr", WordOpKind.WRITE, 1.0, dst.depth, dst.rows)
        self._charge(cost, dst)
        return cost

    @staticmethod
    def _write_vr_raw(pipeline: BitPipeline, vr: int, values: np.ndarray) -> None:
        """Overwrite a VR's stored bits without charging word-op costs.

        Used by the element-wise operations, whose cost is charged once per
        word op rather than per underlying row write.
        """
        pipeline.set_vr_bits(vr, values)

    # ------------------------------------------------------------------ #
    # Accounting                                                           #
    # ------------------------------------------------------------------ #
    def _charge(self, cost: WordOpCost, pipeline: BitPipeline) -> None:
        pipeline.op_log.append(cost)
        if self.auto_cycles:
            self.ledger.charge(f"dce.{cost.name}", cycles=cost.unpipelined_cycles)
        self.ledger.charge(
            f"dce.{cost.kind.value}",
            energy_pj=BitPipeline.WRITE_ENERGY_PJ * cost.rows * cost.bits,
        )

    def charge_stream(self, costs: Sequence[WordOpCost], category: str = "dce.stream") -> float:
        """Charge a pipelined stream of operations (see Figure 10b)."""
        cycles = stream_cycles(list(costs), pipelined=True)
        self.ledger.charge(category, cycles=cycles)
        return cycles

    @property
    def total_uops(self) -> int:
        """Total µops executed across all materialised pipelines."""
        return sum(p.total_uops for p in self._pipelines.values())

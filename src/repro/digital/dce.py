"""The Digital Compute Element (DCE) of a hybrid compute tile.

A DCE bundles 64 RACER-style bit pipelines with the control circuitry that
dispatches µops to them (Table 2).  Beyond plain RACER, DARTH-PUM's DCE adds
*element-wise loads and stores* (Section 4.2): a pipeline can use the values
stored in one of its vector registers as row addresses into another pipeline
of the same HCT, which is how the AES S-box lookup avoids the prohibitively
expensive copy+mask+AND sequence RACER would otherwise need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, ConfigurationError, ExecutionError
from ..metrics import CostLedger
from .logic import LogicFamily, oscar_family
from .microops import WordOpCost, WordOpKind, stream_cycles
from .pipeline import BitPipeline

__all__ = ["DigitalComputeElement", "DceConfig"]


class DceConfig:
    """Geometry of a digital compute element (Table 2 defaults)."""

    def __init__(
        self,
        num_pipelines: int = 64,
        pipeline_depth: int = 64,
        rows: int = 64,
        cols: int = 64,
        issue_queue_depth: int = 64,
    ) -> None:
        if num_pipelines < 1:
            raise ConfigurationError("a DCE needs at least one pipeline")
        self.num_pipelines = int(num_pipelines)
        self.pipeline_depth = int(pipeline_depth)
        self.rows = int(rows)
        self.cols = int(cols)
        self.issue_queue_depth = int(issue_queue_depth)

    @property
    def arrays_per_pipeline(self) -> int:
        """Number of digital PUM arrays in one pipeline."""
        return self.pipeline_depth

    @property
    def total_arrays(self) -> int:
        """Total digital PUM arrays in the DCE."""
        return self.num_pipelines * self.pipeline_depth

    @property
    def capacity_bits(self) -> int:
        """Raw storage capacity of the DCE in bits."""
        return self.total_arrays * self.rows * self.cols


class DigitalComputeElement:
    """A collection of bit pipelines plus dispatch and element-wise access.

    Parameters
    ----------
    config:
        DCE geometry.
    family:
        Digital logic family shared by every pipeline.
    ledger:
        Cost ledger shared with the enclosing HCT.
    lazy:
        When true (default), pipelines are instantiated on first use, which
        keeps chip-scale experiments cheap: a full Table-2 DCE holds 4096
        arrays and most experiments touch only a few pipelines.
    """

    def __init__(
        self,
        config: Optional[DceConfig] = None,
        family: Optional[LogicFamily] = None,
        ledger: Optional[CostLedger] = None,
        lazy: bool = True,
        auto_cycles: bool = True,
    ) -> None:
        self.config = config if config is not None else DceConfig()
        self.family = family if family is not None else oscar_family()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.auto_cycles = bool(auto_cycles)
        self._lazy = bool(lazy)
        self._pipelines: Dict[int, BitPipeline] = {}
        if not lazy:
            for index in range(self.config.num_pipelines):
                self._materialise(index)
        #: Pipelines reserved (marked dead) by a pipeline-reserve instruction.
        self._reserved: set = set()

    # ------------------------------------------------------------------ #
    # Pipeline management                                                  #
    # ------------------------------------------------------------------ #
    def _materialise(self, index: int) -> BitPipeline:
        if not 0 <= index < self.config.num_pipelines:
            raise CapacityError(
                f"pipeline index {index} out of range [0, {self.config.num_pipelines})"
            )
        if index not in self._pipelines:
            self._pipelines[index] = BitPipeline(
                depth=self.config.pipeline_depth,
                rows=self.config.rows,
                cols=self.config.cols,
                family=self.family,
                ledger=self.ledger,
                auto_cycles=self.auto_cycles,
            )
        return self._pipelines[index]

    def pipeline(self, index: int) -> BitPipeline:
        """Return pipeline ``index``, creating it on first use."""
        return self._materialise(index)

    @property
    def active_pipelines(self) -> Tuple[int, ...]:
        """Indices of pipelines that have been touched so far."""
        return tuple(sorted(self._pipelines))

    def reserve_pipeline(self, index: int) -> None:
        """Pipeline-reserve instruction: mark all data in a pipeline dead.

        The MVM reduction sequence may need up to N temporary registers for
        an N-bit input; reserving a pipeline guarantees the analog side can
        stream partial products into it without corrupting live values
        (Section 4.2).
        """
        self._materialise(index)
        self._reserved.add(index)
        self.pipeline(index).reserved = True

    def release_pipeline(self, index: int) -> None:
        """Release a previously reserved pipeline."""
        self._reserved.discard(index)
        if index in self._pipelines:
            self._pipelines[index].reserved = False

    def is_reserved(self, index: int) -> bool:
        """Whether a pipeline is currently reserved for analog output."""
        return index in self._reserved

    # ------------------------------------------------------------------ #
    # Element-wise load/store (Section 4.2)                                #
    # ------------------------------------------------------------------ #
    def element_load(
        self,
        dst_pipeline: int,
        dst_vr: int,
        addr_pipeline: int,
        addr_vr: int,
        table_pipeline: int,
        table_base_vr: int = 0,
        num_elements: Optional[int] = None,
    ) -> WordOpCost:
        """Gather: ``dst[e] = table[addr[e]]`` one element per two cycles.

        Each element of the address register selects a row in the table
        pipeline: row ``addr % rows`` of VR ``table_base_vr + addr // rows``.
        The address range is limited to pipelines within the same HCT.
        """
        dst = self.pipeline(dst_pipeline)
        addr = self.pipeline(addr_pipeline)
        table = self.pipeline(table_pipeline)
        rows = dst.rows
        count = rows if num_elements is None else int(num_elements)
        if count > rows:
            raise ExecutionError("cannot gather more elements than pipeline rows")
        addresses = addr.read_vr(addr_vr)
        for element in range(count):
            address = int(addresses[element])
            table_vr = table_base_vr + address // table.rows
            table_row = address % table.rows
            if table_vr >= table.num_vrs:
                raise ExecutionError(
                    f"address {address} exceeds the table stored in pipeline "
                    f"{table_pipeline}"
                )
            dst.write_element(dst_vr, element, table.read_element(table_vr, table_row))
        cost = WordOpCost("element_load", WordOpKind.ELEMENT, 1.0, dst.depth, count)
        self._charge(cost, dst)
        return cost

    def element_store(
        self,
        src_pipeline: int,
        src_vr: int,
        addr_pipeline: int,
        addr_vr: int,
        table_pipeline: int,
        table_base_vr: int = 0,
        num_elements: Optional[int] = None,
    ) -> WordOpCost:
        """Scatter: ``table[addr[e]] = src[e]`` one element per two cycles."""
        src = self.pipeline(src_pipeline)
        addr = self.pipeline(addr_pipeline)
        table = self.pipeline(table_pipeline)
        count = src.rows if num_elements is None else int(num_elements)
        addresses = addr.read_vr(addr_vr)
        values = src.read_vr(src_vr)
        for element in range(count):
            address = int(addresses[element])
            table_vr = table_base_vr + address // table.rows
            table_row = address % table.rows
            if table_vr >= table.num_vrs:
                raise ExecutionError(
                    f"address {address} exceeds the table stored in pipeline "
                    f"{table_pipeline}"
                )
            table.write_element(table_vr, table_row, int(values[element]))
        cost = WordOpCost("element_store", WordOpKind.ELEMENT, 1.0, src.depth, count)
        self._charge(cost, src)
        return cost

    def copy_vr_between_pipelines(
        self, src_pipeline: int, src_vr: int, dst_pipeline: int, dst_vr: int
    ) -> WordOpCost:
        """Vector copy between two pipelines of the same DCE (RACER COPY)."""
        src = self.pipeline(src_pipeline)
        dst = self.pipeline(dst_pipeline)
        if src.depth != dst.depth:
            raise ExecutionError("pipelines must have matching depths to copy")
        values = src.read_vr(src_vr)
        dst.write_vr(dst_vr, values, charge=False)
        cost = WordOpCost("copy_vr", WordOpKind.WRITE, 1.0, dst.depth, dst.rows)
        self._charge(cost, dst)
        return cost

    # ------------------------------------------------------------------ #
    # Accounting                                                           #
    # ------------------------------------------------------------------ #
    def _charge(self, cost: WordOpCost, pipeline: BitPipeline) -> None:
        pipeline.op_log.append(cost)
        if self.auto_cycles:
            self.ledger.charge(f"dce.{cost.name}", cycles=cost.unpipelined_cycles)
        self.ledger.charge(f"dce.{cost.kind.value}", energy_pj=0.005 * cost.rows * cost.bits)

    def charge_stream(self, costs: Sequence[WordOpCost], category: str = "dce.stream") -> float:
        """Charge a pipelined stream of operations (see Figure 10b)."""
        cycles = stream_cycles(list(costs), pipelined=True)
        self.ledger.charge(category, cycles=cycles)
        return cycles

    @property
    def total_uops(self) -> int:
        """Total µops executed across all materialised pipelines."""
        return sum(p.total_uops for p in self._pipelines.values())

"""Digital PUM logic families.

A *logic family* (Section 2.2.2) defines which Boolean primitives a digital
PUM array can execute natively in a single array-level operation, along with
the latency and energy of each primitive.  DARTH-PUM uses the OSCAR family
(NOR and OR between ReRAM cells); the motivation study (Section 3, Figure 7)
additionally evaluates an *ideal* family capable of any two-input Boolean
operation in one cycle.

Higher-level word operations (add, xor, shift, ...) are synthesised from
these primitives by :mod:`repro.digital.alu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Primitive",
    "LogicFamily",
    "oscar_family",
    "ideal_family",
    "get_family",
]

BoolVec = np.ndarray


def _nor(a: BoolVec, b: BoolVec) -> BoolVec:
    return ~(a | b)


def _or(a: BoolVec, b: BoolVec) -> BoolVec:
    return a | b


def _and(a: BoolVec, b: BoolVec) -> BoolVec:
    return a & b


def _nand(a: BoolVec, b: BoolVec) -> BoolVec:
    return ~(a & b)


def _xor(a: BoolVec, b: BoolVec) -> BoolVec:
    return a ^ b


def _xnor(a: BoolVec, b: BoolVec) -> BoolVec:
    return ~(a ^ b)


def _not(a: BoolVec, b: BoolVec) -> BoolVec:  # second operand ignored
    return ~a


def _copy(a: BoolVec, b: BoolVec) -> BoolVec:  # second operand ignored
    return a.copy()


@dataclass(frozen=True)
class Primitive:
    """A single natively supported array-level Boolean operation."""

    name: str
    #: Vectorised evaluator over boolean column vectors.
    evaluate: Callable[[BoolVec, BoolVec], BoolVec]
    #: Latency of one array-level execution, in cycles.
    latency_cycles: float = 1.0
    #: Energy of operating on a single row (one output device), in pJ.
    energy_per_row_pj: float = 0.01


@dataclass(frozen=True)
class LogicFamily:
    """A named set of Boolean primitives with uniform cost accounting.

    Attributes
    ----------
    name:
        Human-readable family name (``"oscar"`` or ``"ideal"``).
    primitives:
        Mapping from primitive name to :class:`Primitive`.
    peripheral_area_um2:
        Extra per-array peripheral area required to support the family.
        Each additional native operator increases decode/drive complexity
        (Section 3), which is why DARTH-PUM sticks with OSCAR.
    """

    name: str
    primitives: Mapping[str, Primitive]
    peripheral_area_um2: float = 0.0

    def __post_init__(self) -> None:
        if "NOR" not in self.primitives and "XOR" not in self.primitives:
            raise ConfigurationError(
                f"logic family {self.name!r} is not functionally complete"
            )

    def has(self, name: str) -> bool:
        """Whether ``name`` is a native primitive of this family."""
        return name in self.primitives

    def primitive(self, name: str) -> Primitive:
        """Look up a native primitive; raises ``KeyError`` if unsupported."""
        return self.primitives[name]

    @property
    def names(self) -> tuple:
        """Names of the native primitives, sorted for reproducibility."""
        return tuple(sorted(self.primitives))


def oscar_family(
    nor_latency: float = 1.0,
    energy_per_row_pj: float = 0.0125,
) -> LogicFamily:
    """The OSCAR logic family: NOR plus OR in ReRAM (Truong et al.).

    The fourth load-resistor device balances the voltage division across the
    cells (Figure 4), which is reflected only in the energy constant here.
    """
    primitives: Dict[str, Primitive] = {
        "NOR": Primitive("NOR", _nor, nor_latency, energy_per_row_pj),
        "OR": Primitive("OR", _or, nor_latency, energy_per_row_pj),
        "NOT": Primitive("NOT", _not, nor_latency, energy_per_row_pj),
        "COPY": Primitive("COPY", _copy, nor_latency, energy_per_row_pj),
    }
    return LogicFamily(name="oscar", primitives=primitives, peripheral_area_um2=0.0)


def ideal_family(energy_per_row_pj: float = 0.0125) -> LogicFamily:
    """An ideal family: any two-input Boolean operator in a single cycle.

    Used only for the motivation study (Figure 7) to show that richer logic
    families buy very little once analog PUM handles the MVMs.  The extra
    peripheral area models the additional drivers/decoders each operator
    needs (FELIX-style).
    """
    primitives: Dict[str, Primitive] = {
        name: Primitive(name, fn, 1.0, energy_per_row_pj)
        for name, fn in [
            ("NOR", _nor),
            ("OR", _or),
            ("AND", _and),
            ("NAND", _nand),
            ("XOR", _xor),
            ("XNOR", _xnor),
            ("NOT", _not),
            ("COPY", _copy),
        ]
    }
    return LogicFamily(name="ideal", primitives=primitives, peripheral_area_um2=120.0)


_FAMILIES: Dict[str, Callable[[], LogicFamily]] = {
    "oscar": oscar_family,
    "ideal": ideal_family,
}


def get_family(name: str) -> LogicFamily:
    """Construct a logic family by name (``"oscar"`` or ``"ideal"``)."""
    try:
        return _FAMILIES[name.lower()]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown logic family {name!r}; available: {sorted(_FAMILIES)}"
        ) from exc

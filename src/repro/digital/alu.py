"""Boolean synthesis of word-level arithmetic from logic-family primitives.

Digital PUM can execute *any* computation, but only as sequences of the
logic family's native primitives (Section 2.2.2).  This module knows how to
build the per-bit gate networks -- XOR, AND, full adders, multiplexers --
out of OSCAR NOR operations (or out of the richer ideal family when it is
available), executing them *for real* on a :class:`~repro.digital.array.
DigitalArray` so that both the functional result and the µop count are
genuine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .array import DigitalArray
from .logic import LogicFamily
from .microops import MicroOp

__all__ = ["ScratchColumns", "BooleanSynthesizer"]


@dataclass(frozen=True)
class ScratchColumns:
    """Scratch (temporary) column indices reserved at the top of each array.

    The synthesiser needs a handful of temporaries per array to stage the
    intermediate NOR results of a gate network, plus dedicated carry-in /
    carry-out columns used by the bit-serial adder.
    """

    t0: int
    t1: int
    t2: int
    t3: int
    t4: int
    t5: int
    carry_in: int
    carry_out: int

    #: Number of columns a pipeline must reserve for scratch space.
    COUNT = 8

    @classmethod
    def at_top_of(cls, cols: int) -> "ScratchColumns":
        """Place the scratch columns in the last ``COUNT`` columns."""
        if cols < cls.COUNT + 1:
            raise ConfigurationError(
                f"array needs at least {cls.COUNT + 1} columns, got {cols}"
            )
        base = cols - cls.COUNT
        return cls(*(base + i for i in range(cls.COUNT)))


class BooleanSynthesizer:
    """Executes word-level gate networks on a single digital PUM array.

    Every method returns the number of µops it executed; the caller converts
    µop counts into cycles according to the pipelining model.
    """

    def __init__(self, family: LogicFamily) -> None:
        self.family = family

    # ------------------------------------------------------------------ #
    # Single-gate helpers                                                  #
    # ------------------------------------------------------------------ #
    def _exec(self, array: DigitalArray, primitive: str, a: int, b: int, dst: int) -> int:
        array.execute(MicroOp(primitive, a, b, dst))
        return 1

    def not_col(self, array: DigitalArray, a: int, dst: int) -> int:
        """dst = NOT a."""
        if self.family.has("NOT"):
            return self._exec(array, "NOT", a, a, dst)
        return self._exec(array, "NOR", a, a, dst)

    def copy_col(self, array: DigitalArray, a: int, dst: int) -> int:
        """dst = a."""
        if self.family.has("COPY"):
            return self._exec(array, "COPY", a, a, dst)
        # Double inversion through the destination.
        ops = self.not_col(array, a, dst)
        ops += self.not_col(array, dst, dst)
        return ops

    def or_col(self, array: DigitalArray, a: int, b: int, dst: int) -> int:
        """dst = a OR b."""
        if self.family.has("OR"):
            return self._exec(array, "OR", a, b, dst)
        ops = self._exec(array, "NOR", a, b, dst)
        ops += self.not_col(array, dst, dst)
        return ops

    def nor_col(self, array: DigitalArray, a: int, b: int, dst: int) -> int:
        """dst = a NOR b."""
        return self._exec(array, "NOR", a, b, dst)

    def and_col(self, array: DigitalArray, a: int, b: int, dst: int, s: ScratchColumns) -> int:
        """dst = a AND b (NOR of the two complements under OSCAR)."""
        if self.family.has("AND"):
            return self._exec(array, "AND", a, b, dst)
        ops = self.not_col(array, a, s.t0)
        ops += self.not_col(array, b, s.t1)
        ops += self._exec(array, "NOR", s.t0, s.t1, dst)
        return ops

    def xor_col(self, array: DigitalArray, a: int, b: int, dst: int, s: ScratchColumns) -> int:
        """dst = a XOR b.

        Under OSCAR: ``XOR(a, b) = NOR(NOR(a, b), AND(a, b))`` which costs
        five NOR-class µops; the ideal family does it in one.
        """
        if self.family.has("XOR"):
            return self._exec(array, "XOR", a, b, dst)
        ops = self._exec(array, "NOR", a, b, s.t2)          # t2 = NOR(a, b)
        ops += self.not_col(array, a, s.t0)                  # t0 = ~a
        ops += self.not_col(array, b, s.t1)                  # t1 = ~b
        ops += self._exec(array, "NOR", s.t0, s.t1, s.t3)    # t3 = a AND b
        ops += self._exec(array, "NOR", s.t2, s.t3, dst)     # dst = a XOR b
        return ops

    # ------------------------------------------------------------------ #
    # Arithmetic cells                                                     #
    # ------------------------------------------------------------------ #
    def full_adder(
        self,
        array: DigitalArray,
        a: int,
        b: int,
        sum_dst: int,
        s: ScratchColumns,
    ) -> int:
        """One bit of a ripple-carry adder.

        Consumes the carry-in column ``s.carry_in`` and produces the
        carry-out in ``s.carry_out``; the pipeline moves the carry to the
        next bit array between invocations.
        """
        ops = 0
        if self.family.has("XOR") and self.family.has("AND"):
            # Ideal family: 5 gate evaluations per bit.
            ops += self._exec(array, "XOR", a, b, s.t4)               # x = a ^ b
            ops += self._exec(array, "AND", a, b, s.t2)               # g = a & b
            ops += self._exec(array, "AND", s.t4, s.carry_in, s.t3)   # p = x & cin
            ops += self._exec(array, "XOR", s.t4, s.carry_in, sum_dst)
            ops += self._exec(array, "OR", s.t2, s.t3, s.carry_out)
            return ops
        # OSCAR (NOR/OR/NOT) synthesis: 12 µops per bit.
        ops += self._exec(array, "NOR", a, b, s.t2)                   # t2 = NOR(a,b)
        ops += self.not_col(array, a, s.t0)                           # t0 = ~a
        ops += self.not_col(array, b, s.t1)                           # t1 = ~b
        ops += self._exec(array, "NOR", s.t0, s.t1, s.t3)             # t3 = a AND b
        ops += self._exec(array, "NOR", s.t2, s.t3, s.t4)             # t4 = a XOR b
        ops += self._exec(array, "NOR", s.t4, s.carry_in, s.t2)       # t2 = NOR(x, cin)
        ops += self.not_col(array, s.t4, s.t0)                        # t0 = ~x
        ops += self.not_col(array, s.carry_in, s.t1)                  # t1 = ~cin
        ops += self._exec(array, "NOR", s.t0, s.t1, s.t5)             # t5 = x AND cin
        ops += self._exec(array, "NOR", s.t2, s.t5, sum_dst)          # sum = x XOR cin
        ops += self._exec(array, "NOR", s.t3, s.t5, s.carry_out)      # NOR(ab, x&cin)
        ops += self.not_col(array, s.carry_out, s.carry_out)          # cout
        return ops

    def mux_col(
        self,
        array: DigitalArray,
        select: int,
        when_true: int,
        when_false: int,
        dst: int,
        s: ScratchColumns,
    ) -> int:
        """dst = select ? when_true : when_false (per row).

        The AND helper uses ``t0``/``t1`` internally, so the mux keeps its own
        intermediates in ``t2``/``t3``/``t4``.
        """
        ops = self.and_col(array, select, when_true, s.t3, s)          # t3 = sel & t
        ops += self.not_col(array, select, s.t4)                       # t4 = ~sel
        ops += self.and_col(array, s.t4, when_false, s.t2, s)          # t2 = ~sel & f
        ops += self.or_col(array, s.t3, s.t2, dst)
        return ops

    @property
    def uops_per_xor(self) -> int:
        """µops needed for a single-bit XOR (5 for OSCAR, 1 for ideal)."""
        return 1 if self.family.has("XOR") else 5

    @property
    def uops_per_and(self) -> int:
        """µops needed for a single-bit AND (3 for OSCAR, 1 for ideal)."""
        return 1 if self.family.has("AND") else 3

    @property
    def uops_per_full_adder(self) -> int:
        """µops needed per full-adder bit (12 for OSCAR, 5 for ideal)."""
        return 5 if self.family.has("XOR") and self.family.has("AND") else 12

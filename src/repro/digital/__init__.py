"""Digital (Boolean) PUM substrate: RACER-style bit-pipelined computation."""

from .alu import BooleanSynthesizer, ScratchColumns
from .array import DigitalArray
from .dce import DceConfig, DigitalComputeElement
from .logic import LogicFamily, Primitive, get_family, ideal_family, oscar_family
from .microops import MicroOp, WordOpCost, WordOpKind, stream_cycles
from .pipeline import BitPipeline

__all__ = [
    "BitPipeline",
    "BooleanSynthesizer",
    "DceConfig",
    "DigitalArray",
    "DigitalComputeElement",
    "LogicFamily",
    "MicroOp",
    "Primitive",
    "ScratchColumns",
    "WordOpCost",
    "WordOpKind",
    "get_family",
    "ideal_family",
    "oscar_family",
    "stream_cycles",
]

"""Cycle, energy, and area accounting primitives.

Every simulated component charges its work against a :class:`CostLedger`.
Ledgers are cheap, additive, and serialisable, which lets the evaluation
harness build the paper's figures from per-kernel breakdowns without the
components knowing anything about the experiments.

Units used throughout the library:

* time    -- clock cycles of the 1 GHz DARTH-PUM clock (1 cycle == 1 ns)
* energy  -- picojoules (pJ)
* area    -- square micrometres (um^2)
* power   -- milliwatts (mW); ``energy_pj = power_mw * cycles`` at 1 GHz
             because 1 mW * 1 ns == 1 pJ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = [
    "CostLedger",
    "CostSnapshot",
    "ema",
    "merge_ledgers",
    "geometric_mean",
    "percentile",
    "percentile_sorted",
]

#: Cycles per second of the modelled DARTH-PUM clock (Section 6: 1 GHz).
CLOCK_HZ = 1.0e9

#: Seconds per cycle.
CYCLE_SECONDS = 1.0 / CLOCK_HZ


@dataclass(frozen=True)
class CostSnapshot:
    """An immutable view of a ledger, useful for before/after deltas."""

    cycles: float
    energy_pj: float
    cycle_breakdown: Mapping[str, float]
    energy_breakdown: Mapping[str, float]

    @property
    def seconds(self) -> float:
        """Wall-clock seconds implied by the cycle count at 1 GHz."""
        return self.cycles * CYCLE_SECONDS

    @property
    def energy_joules(self) -> float:
        """Total energy in joules."""
        return self.energy_pj * 1e-12


@dataclass
class CostLedger:
    """Accumulates cycles and energy, each attributed to a named category.

    Categories are free-form strings such as ``"ace.mvm"`` or
    ``"dce.nor"``; the evaluation harness groups them by prefix when
    building per-kernel breakdowns (e.g. Figure 14).
    """

    cycles: float = 0.0
    energy_pj: float = 0.0
    cycle_breakdown: Dict[str, float] = field(default_factory=dict)
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, *, cycles: float = 0.0, energy_pj: float = 0.0) -> None:
        """Add ``cycles`` and ``energy_pj`` under ``category``."""
        if cycles < 0 or energy_pj < 0:
            raise ValueError("cycles and energy must be non-negative")
        if cycles:
            self.cycles += cycles
            self.cycle_breakdown[category] = self.cycle_breakdown.get(category, 0.0) + cycles
        if energy_pj:
            self.energy_pj += energy_pj
            self.energy_breakdown[category] = (
                self.energy_breakdown.get(category, 0.0) + energy_pj
            )

    def charge_power(self, category: str, *, cycles: float, power_mw: float) -> None:
        """Charge ``cycles`` of activity at ``power_mw``; energy follows at 1 GHz."""
        self.charge(category, cycles=cycles, energy_pj=cycles * power_mw)

    def merge(self, other: "CostLedger") -> None:
        """Fold ``other`` into this ledger in place."""
        self.cycles += other.cycles
        self.energy_pj += other.energy_pj
        for key, value in other.cycle_breakdown.items():
            self.cycle_breakdown[key] = self.cycle_breakdown.get(key, 0.0) + value
        for key, value in other.energy_breakdown.items():
            self.energy_breakdown[key] = self.energy_breakdown.get(key, 0.0) + value

    def snapshot(self) -> CostSnapshot:
        """Return an immutable copy of the current totals."""
        return CostSnapshot(
            cycles=self.cycles,
            energy_pj=self.energy_pj,
            cycle_breakdown=dict(self.cycle_breakdown),
            energy_breakdown=dict(self.energy_breakdown),
        )

    def reset(self) -> None:
        """Zero the ledger."""
        self.cycles = 0.0
        self.energy_pj = 0.0
        self.cycle_breakdown.clear()
        self.energy_breakdown.clear()

    def cycles_for(self, prefix: str) -> float:
        """Total cycles across all categories starting with ``prefix``."""
        return sum(v for k, v in self.cycle_breakdown.items() if k.startswith(prefix))

    def energy_for(self, prefix: str) -> float:
        """Total energy (pJ) across all categories starting with ``prefix``."""
        return sum(v for k, v in self.energy_breakdown.items() if k.startswith(prefix))

    @property
    def seconds(self) -> float:
        """Wall-clock seconds implied by the cycle count at 1 GHz."""
        return self.cycles * CYCLE_SECONDS

    @property
    def energy_joules(self) -> float:
        """Total energy in joules."""
        return self.energy_pj * 1e-12


def merge_ledgers(ledgers: Iterable[CostLedger]) -> CostLedger:
    """Return a new ledger containing the sum of ``ledgers``."""
    total = CostLedger()
    for ledger in ledgers:
        total.merge(ledger)
    return total


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``, linearly interpolated.

    Used by the serving telemetry for p50/p95/p99 latency summaries; kept
    here (pure Python, no numpy) so ledgers and telemetry share one home.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    >>> percentile([10], 99)
    10.0
    """
    return percentile_sorted(sorted(float(v) for v in values), q)


def percentile_sorted(ordered: "list[float]", q: float) -> float:
    """:func:`percentile` over values already sorted ascending.

    The sort is the whole cost of a percentile query, so callers that keep
    a sorted window (e.g. the serving telemetry, which re-sorts only when a
    batch completes) query through this entry point and skip it.

    >>> percentile_sorted([1, 2, 3, 4], 50)
    2.5
    """
    if not ordered:
        raise ValueError("percentile() requires at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile() expects q in [0, 100]")
    position = (len(ordered) - 1) * (q / 100.0)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return float(ordered[low]) * (1.0 - fraction) + float(ordered[high]) * fraction


def ema(previous: "float | None", value: float, alpha: float) -> float:
    """One exponential-moving-average step, seeding on the first observation.

    The serving autotuner smooths its telemetry windows (batch fill, shed
    rate) through this before nudging any knob, so a single quiet window
    cannot whipsaw the scheduler.

    >>> ema(None, 4.0, 0.5)
    4.0
    >>> ema(4.0, 8.0, 0.5)
    6.0
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("ema() expects alpha in (0, 1]")
    if previous is None:
        return float(value)
    return alpha * float(value) + (1.0 - alpha) * float(previous)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (used for figure geomeans)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() requires at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))

"""DARTH-PUM: a hybrid analog-digital processing-using-memory architecture.

A simulation-based reproduction of "DARTH-PUM: A Hybrid Processing-Using-
Memory Architecture" (ASPLOS 2026).  The package is organised as:

* :mod:`repro.reram`     -- ReRAM device and non-ideality models
* :mod:`repro.digital`   -- RACER-style digital (Boolean) PUM substrate
* :mod:`repro.analog`    -- analog crossbar MVM substrate with periphery
* :mod:`repro.core`      -- hybrid compute tiles, chip, area/energy models
* :mod:`repro.plan`      -- the ExecutionPlan IR, planner, and backend registry
* :mod:`repro.isa`       -- the hybrid ISA, assembler, and program executor
* :mod:`repro.runtime`   -- the Table 1 programmer-facing library
* :mod:`repro.workloads` -- AES, ResNet-20, and LLM-encoder workloads
* :mod:`repro.baselines` -- comparison architecture performance models
* :mod:`repro.eval`      -- the figure/table regeneration harness
"""

from .core.chip import DarthPumChip
from .core.config import ChipConfig, HctConfig
from .core.hct import HybridComputeTile
from .metrics import CostLedger
from .plan import (
    BACKENDS,
    BackendRegistry,
    ExecutionBackend,
    MvmPlan,
    Planner,
    ShardedPlan,
    resolve_backend,
)
from .runtime.faults import FaultInjector, FaultSchedule
from .runtime.integrity import DeviceHealth, IntegrityChecker
from .runtime.pool import DevicePool, PredictedFinishTimePolicy, RebuildReport
from .runtime.queueing import IndexedRequestQueue, RequestQueue
from .runtime.scheduling import (
    Autotuner,
    CostAwarePolicy,
    SchedulingPolicy,
    SloClass,
    StaticBatchingPolicy,
)
from .runtime.server import PumServer, ThreadedServerDriver
from .runtime.session import DarthPumDevice

__version__ = "1.7.0"

__all__ = [
    "BACKENDS",
    "Autotuner",
    "BackendRegistry",
    "ChipConfig",
    "CostAwarePolicy",
    "CostLedger",
    "DarthPumChip",
    "DarthPumDevice",
    "DeviceHealth",
    "DevicePool",
    "ExecutionBackend",
    "FaultInjector",
    "FaultSchedule",
    "HctConfig",
    "HybridComputeTile",
    "IndexedRequestQueue",
    "IntegrityChecker",
    "MvmPlan",
    "Planner",
    "PredictedFinishTimePolicy",
    "PumServer",
    "RebuildReport",
    "RequestQueue",
    "SchedulingPolicy",
    "ShardedPlan",
    "SloClass",
    "StaticBatchingPolicy",
    "ThreadedServerDriver",
    "__version__",
    "resolve_backend",
]

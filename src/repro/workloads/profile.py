"""Workload profiles consumed by the architecture performance models.

A :class:`WorkloadProfile` summarises one "item" of work (one AES block, one
CNN inference, one encoder forward pass) as counts of the operation classes
the evaluated architectures treat differently:

* MVM operations (rows x cols x count) -- analog-PUM territory,
* element-wise vector operations (XOR, add, ReLU, batch-norm scale/shift),
* table lookups (AES SubBytes),
* "non-linear" operations (softmax, layer norm, GELU) that need either CPU
  support, special function units, or long digital-PUM sequences, and
* host data movement (what the analog+CPU baseline must ship between the
  accelerator and the CPU for every non-MVM step).

The profiles are *derived from the workload implementations themselves*
(layer shapes, round structure) rather than hard-coded, so changing a model
definition automatically changes every figure that uses it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["MvmOp", "WorkloadProfile"]


@dataclass(frozen=True)
class MvmOp:
    """A group of identical matrix-vector multiplies within one work item."""

    rows: int
    cols: int
    count: float = 1.0
    #: Human-readable label (layer name / kernel name).
    label: str = ""

    @property
    def macs(self) -> float:
        """Multiply-accumulate operations represented by this group."""
        return float(self.rows) * float(self.cols) * self.count


@dataclass
class WorkloadProfile:
    """Operation counts for one item of a workload."""

    name: str
    item_name: str
    mvm_ops: List[MvmOp] = field(default_factory=list)
    #: Element-wise vector operations per item (count of element updates).
    elementwise_ops: float = 0.0
    #: Bit width of the element-wise operations.
    elementwise_width: int = 8
    #: Element-wise table lookups per item.
    lookup_ops: float = 0.0
    #: Complex non-linear operations per item (softmax/layernorm/GELU element
    #: evaluations); these are the operations AppAccel builds SFUs for.
    nonlinear_ops: float = 0.0
    #: Total weight footprint in bytes (decides how many tiles a copy needs).
    weight_bytes: float = 0.0
    #: Bytes exchanged with the host per item when non-MVM work runs on a CPU.
    host_bytes_per_item: float = 0.0
    #: Largest number of independent items that can usefully run in parallel.
    batch_parallelism: float = float("inf")
    #: Free-form per-kernel MVM labels -> (rows, cols, count), for breakdowns.
    kernel_mvms: Dict[str, Tuple[int, int, float]] = field(default_factory=dict)

    @property
    def total_macs(self) -> float:
        """Total multiply-accumulates per item."""
        return sum(op.macs for op in self.mvm_ops)

    @property
    def total_mvm_invocations(self) -> float:
        """Total number of MVM invocations per item."""
        return sum(op.count for op in self.mvm_ops)

    @property
    def non_mvm_ops(self) -> float:
        """All per-item operations that cannot run on analog PUM."""
        return self.elementwise_ops + self.lookup_ops + self.nonlinear_ops

    def scaled(self, factor: float) -> "WorkloadProfile":
        """A profile for ``factor`` items fused into one (e.g. batching)."""
        return WorkloadProfile(
            name=self.name,
            item_name=f"{factor}x {self.item_name}",
            mvm_ops=[MvmOp(op.rows, op.cols, op.count * factor, op.label) for op in self.mvm_ops],
            elementwise_ops=self.elementwise_ops * factor,
            elementwise_width=self.elementwise_width,
            lookup_ops=self.lookup_ops * factor,
            nonlinear_ops=self.nonlinear_ops * factor,
            weight_bytes=self.weight_bytes,
            host_bytes_per_item=self.host_bytes_per_item * factor,
            batch_parallelism=self.batch_parallelism,
            kernel_mvms=dict(self.kernel_mvms),
        )

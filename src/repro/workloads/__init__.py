"""Workloads evaluated in the paper: AES, ResNet-20 (CNN), and an LLM encoder."""

from .profile import MvmOp, WorkloadProfile

__all__ = ["MvmOp", "WorkloadProfile"]

"""A from-scratch transformer encoder (the LLMEnc workload, Section 5.2).

The encoder follows the standard architecture (Vaswani et al.): multi-head
self-attention, residual connections with layer normalisation, and a
position-wise feed-forward network (FFN).  The default configuration matches
BERT-base-like dimensions (hidden 768, 12 heads, FFN 3072, 12 layers), which
is the shape the performance model uses; the functional tests exercise a
reduced configuration.

The split that matters for DARTH-PUM (Section 5.2): the FFN and the Q/K/V/
output projections are static matrices suited to the ACE, while the
attention score and context products (``Q K^T`` and ``scores V``) involve
*dynamically produced* matrices, so they run in the DCE; softmax, GELU, and
layer norm use the I-BERT integer kernels in the DCE as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .ibert import i_gelu, i_layernorm, i_softmax, quantize_activation

__all__ = ["EncoderConfig", "MultiHeadAttention", "FeedForward", "EncoderLayer", "TransformerEncoder"]


@dataclass(frozen=True)
class EncoderConfig:
    """Dimensions of the encoder stack."""

    hidden_size: int = 768
    num_heads: int = 12
    ffn_size: int = 3072
    num_layers: int = 12
    sequence_length: int = 128

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        """Per-head dimensionality."""
        return self.hidden_size // self.num_heads

    @classmethod
    def bert_base(cls, sequence_length: int = 128) -> "EncoderConfig":
        """The BERT-base-like configuration used by the performance model."""
        return cls(hidden_size=768, num_heads=12, ffn_size=3072, num_layers=12,
                   sequence_length=sequence_length)

    @classmethod
    def tiny(cls, sequence_length: int = 16) -> "EncoderConfig":
        """A reduced configuration for functional tests and examples."""
        return cls(hidden_size=32, num_heads=4, ffn_size=64, num_layers=2,
                   sequence_length=sequence_length)


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class MultiHeadAttention:
    """Standard multi-head self-attention."""

    def __init__(self, config: EncoderConfig, rng: np.random.Generator) -> None:
        self.config = config
        h = config.hidden_size
        scale = 1.0 / np.sqrt(h)
        self.w_q = rng.normal(0, scale, size=(h, h))
        self.w_k = rng.normal(0, scale, size=(h, h))
        self.w_v = rng.normal(0, scale, size=(h, h))
        self.w_o = rng.normal(0, scale, size=(h, h))

    def forward(self, x: np.ndarray, integer_softmax: bool = False) -> np.ndarray:
        """Self-attention over a (seq, hidden) input."""
        config = self.config
        seq = x.shape[0]
        q = x @ self.w_q
        k = x @ self.w_k
        v = x @ self.w_v
        heads = []
        for head in range(config.num_heads):
            s = slice(head * config.head_dim, (head + 1) * config.head_dim)
            scores = (q[:, s] @ k[:, s].T) / np.sqrt(config.head_dim)
            if integer_softmax:
                q_scores, scale = quantize_activation(scores, bits=16)
                probs_q, probs_scale = i_softmax(q_scores, scale, axis=-1)
                probs = probs_q.astype(float) * probs_scale
                probs = probs / np.maximum(probs.sum(axis=-1, keepdims=True), 1e-9)
            else:
                probs = _softmax(scores, axis=-1)
            heads.append(probs @ v[:, s])
        context = np.concatenate(heads, axis=1)
        return context @ self.w_o


class FeedForward:
    """Position-wise feed-forward network with GELU."""

    def __init__(self, config: EncoderConfig, rng: np.random.Generator) -> None:
        h, f = config.hidden_size, config.ffn_size
        self.w1 = rng.normal(0, 1.0 / np.sqrt(h), size=(h, f))
        self.b1 = np.zeros(f)
        self.w2 = rng.normal(0, 1.0 / np.sqrt(f), size=(f, h))
        self.b2 = np.zeros(h)

    def forward(self, x: np.ndarray, integer_gelu: bool = False) -> np.ndarray:
        hidden = x @ self.w1 + self.b1
        if integer_gelu:
            q, scale = quantize_activation(hidden, bits=16)
            gelu_q, gelu_scale = i_gelu(q, scale)
            hidden = gelu_q.astype(float) * gelu_scale
        else:
            hidden = 0.5 * hidden * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (hidden + 0.044715 * hidden ** 3)))
        return hidden @ self.w2 + self.b2


class EncoderLayer:
    """One encoder layer: attention + FFN with residuals and layer norms."""

    def __init__(self, config: EncoderConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.attention = MultiHeadAttention(config, rng)
        self.ffn = FeedForward(config, rng)
        self.ln1_gamma = np.ones(config.hidden_size)
        self.ln1_beta = np.zeros(config.hidden_size)
        self.ln2_gamma = np.ones(config.hidden_size)
        self.ln2_beta = np.zeros(config.hidden_size)

    def _layernorm(self, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   integer: bool = False) -> np.ndarray:
        if integer:
            q, scale = quantize_activation(x, bits=16)
            out_q, out_scale = i_layernorm(q, scale, gamma, beta)
            return out_q.astype(float) * out_scale
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + 1e-5) * gamma + beta

    def forward(self, x: np.ndarray, integer_kernels: bool = False) -> np.ndarray:
        attended = self.attention.forward(x, integer_softmax=integer_kernels)
        x = self._layernorm(x + attended, self.ln1_gamma, self.ln1_beta, integer_kernels)
        fed = self.ffn.forward(x, integer_gelu=integer_kernels)
        return self._layernorm(x + fed, self.ln2_gamma, self.ln2_beta, integer_kernels)


class TransformerEncoder:
    """A stack of encoder layers."""

    def __init__(self, config: Optional[EncoderConfig] = None, seed: int = 0) -> None:
        self.config = config if config is not None else EncoderConfig.bert_base()
        rng = np.random.default_rng(seed)
        self.layers: List[EncoderLayer] = [
            EncoderLayer(self.config, rng) for _ in range(self.config.num_layers)
        ]

    def forward(self, x: np.ndarray, integer_kernels: bool = False) -> np.ndarray:
        """Run the full encoder over a (seq, hidden) input."""
        for layer in self.layers:
            x = layer.forward(x, integer_kernels=integer_kernels)
        return x

    def parameter_count(self) -> int:
        """Total weight parameters in the encoder stack."""
        config = self.config
        per_layer = 4 * config.hidden_size ** 2 + 2 * config.hidden_size * config.ffn_size
        per_layer += config.ffn_size + config.hidden_size + 4 * config.hidden_size
        return per_layer * config.num_layers

"""Mapping the LLM encoder onto DARTH-PUM (Section 5.2).

Static weight matrices -- the Q/K/V/output projections and the two FFN
matrices -- are programmed into analog arrays and reused across tokens.
The attention score (``Q K^T``) and context (``scores V``) products involve
matrices produced at run time, and re-programming analog devices is slow and
energetic, so those products execute in the digital compute element, as do
softmax, GELU, and layer normalisation (via the I-BERT integer kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.config import HctConfig
from ...core.hct import HybridComputeTile
from ...errors import MappingError
from ..profile import MvmOp, WorkloadProfile
from .encoder import EncoderConfig

__all__ = ["LlmMapping", "encoder_profile", "run_projection_on_tile"]


@dataclass(frozen=True)
class _MatrixPlacementInfo:
    """Static matrix placed in the ACE."""

    label: str
    rows: int
    cols: int
    hcts_needed: int


class LlmMapping:
    """Per-matrix placement of an encoder stack over hybrid compute tiles."""

    def __init__(self, config: Optional[EncoderConfig] = None,
                 hct_config: Optional[HctConfig] = None,
                 weight_bits: int = 8, bits_per_cell: int = 2) -> None:
        self.config = config if config is not None else EncoderConfig.bert_base()
        self.hct_config = hct_config if hct_config is not None else HctConfig.paper_default()
        self.weight_bits = weight_bits
        self.bits_per_cell = bits_per_cell
        self.static_matrices: List[_MatrixPlacementInfo] = self._place()

    def _hcts_for(self, rows: int, cols: int) -> int:
        ace = self.hct_config.ace
        slices = -(-self.weight_bits // self.bits_per_cell)
        arrays = -(-rows // ace.array_rows) * -(-cols // ace.array_cols) * slices
        return -(-arrays // ace.num_arrays)

    def _place(self) -> List[_MatrixPlacementInfo]:
        h, f = self.config.hidden_size, self.config.ffn_size
        placements = []
        for layer in range(self.config.num_layers):
            for name, rows, cols in [
                ("w_q", h, h), ("w_k", h, h), ("w_v", h, h), ("w_o", h, h),
                ("ffn_w1", h, f), ("ffn_w2", f, h),
            ]:
                placements.append(
                    _MatrixPlacementInfo(
                        label=f"layer{layer}.{name}", rows=rows, cols=cols,
                        hcts_needed=self._hcts_for(rows, cols),
                    )
                )
        return placements

    @property
    def total_hcts(self) -> int:
        """HCTs needed to keep every static matrix resident."""
        return sum(p.hcts_needed for p in self.static_matrices)

    @property
    def weight_bytes(self) -> float:
        """Static weight footprint in bytes."""
        return sum(p.rows * p.cols for p in self.static_matrices) * self.weight_bits / 8


def encoder_profile(config: Optional[EncoderConfig] = None) -> WorkloadProfile:
    """Workload profile of one encoder forward pass (per sequence)."""
    config = config if config is not None else EncoderConfig.bert_base()
    h, f = config.hidden_size, config.ffn_size
    seq = config.sequence_length
    heads, head_dim = config.num_heads, config.head_dim
    layers = config.num_layers

    mvm_ops: List[MvmOp] = []
    kernel_mvms: Dict[str, Tuple[int, int, float]] = {}
    # Static projections and FFN run on the ACE: one MVM per token per matrix.
    for label, rows, cols in [("w_q", h, h), ("w_k", h, h), ("w_v", h, h), ("w_o", h, h),
                              ("ffn_w1", h, f), ("ffn_w2", f, h)]:
        op = MvmOp(rows=rows, cols=cols, count=float(seq * layers), label=label)
        mvm_ops.append(op)
        kernel_mvms[label] = (rows, cols, float(seq * layers))

    # Attention score and context products run in the DCE (dynamic matrices):
    # per layer, per head: (seq x head_dim) @ (head_dim x seq) and
    # (seq x seq) @ (seq x head_dim).  Count them as element-wise MAC work.
    attention_macs = layers * heads * (seq * seq * head_dim * 2)
    # Softmax over seq elements per row, layer norms and GELUs over hidden/FFN.
    nonlinear = layers * (heads * seq * seq          # softmax elements
                          + 2 * seq * h              # two layer norms
                          + seq * f)                 # GELU elements
    elementwise = layers * (2 * seq * h) + attention_macs
    weight_bytes = layers * (4 * h * h + 2 * h * f)
    # Baseline ships activations to the CPU for every non-MVM step.
    host_bytes = layers * seq * (4 * h + 2 * f + heads * seq)

    return WorkloadProfile(
        name="llm_encoder",
        item_name="sequence",
        mvm_ops=mvm_ops,
        elementwise_ops=float(elementwise),
        elementwise_width=8,
        lookup_ops=0.0,
        nonlinear_ops=float(nonlinear),
        weight_bytes=float(weight_bytes),
        host_bytes_per_item=float(host_bytes),
        kernel_mvms=kernel_mvms,
    )


def run_projection_on_tile(
    tile: HybridComputeTile,
    weight: np.ndarray,
    activations: np.ndarray,
    weight_bits: int = 6,
    activation_bits: int = 6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run a (token x hidden) projection through a real hybrid compute tile.

    Quantises the projection matrix, programs it into the ACE, pushes each
    token's activation vector through the hybrid MVM path, and returns the
    dequantised device result alongside the float reference.
    """
    from ..cnn.quantize import quantize

    weight = np.asarray(weight, dtype=float)
    activations = np.asarray(activations, dtype=float)
    if activations.ndim != 2 or weight.ndim != 2:
        raise MappingError("run_projection_on_tile expects 2-D activations and weights")
    q_w = quantize(weight, bits=weight_bits)
    q_x = quantize(activations, bits=activation_bits)
    handle = tile.set_matrix(q_w.values, value_bits=weight_bits, bits_per_cell=1)
    # All tokens go through the tile as one batched MVM: shift each token's
    # activations into the non-negative range, push the whole batch through
    # the ACE/DCE in one arbiter pass, then undo the per-token offsets.
    vectors = q_x.values.astype(np.int64)
    offsets = np.maximum(0, -vectors.min(axis=1))
    shifted = vectors + offsets[:, None]
    result = tile.execute_mvm_batch(handle, shifted, input_bits=activation_bits + 1)
    corrections = offsets[:, None] * q_w.values.sum(axis=0)[None, :]
    tile.release_matrix(handle)
    device = (result.values - corrections).astype(float) * q_w.scale * q_x.scale
    return device, activations @ weight

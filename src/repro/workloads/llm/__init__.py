"""LLM encoder workload: transformer encoder, I-BERT kernels, DARTH-PUM mapping."""

from .encoder import (
    EncoderConfig,
    EncoderLayer,
    FeedForward,
    MultiHeadAttention,
    TransformerEncoder,
)
from .ibert import i_exp, i_gelu, i_layernorm, i_softmax, integer_sqrt, quantize_activation
from .mapping import LlmMapping, encoder_profile, run_projection_on_tile

__all__ = [
    "EncoderConfig",
    "EncoderLayer",
    "FeedForward",
    "LlmMapping",
    "MultiHeadAttention",
    "TransformerEncoder",
    "encoder_profile",
    "i_exp",
    "i_gelu",
    "i_layernorm",
    "i_softmax",
    "integer_sqrt",
    "quantize_activation",
    "run_projection_on_tile",
]

"""Integer-only kernels for transformer non-linearities (I-BERT style).

DARTH-PUM executes the encoder's non-MVM operations -- softmax, GELU, layer
normalisation, square root -- in its digital compute element using the
integer-only algorithms of I-BERT (Section 5.2): polynomial approximations
of exp/erf plus an integer Newton iteration for the square root.  These are
exactly the functions a CPU (Baseline) or a special function unit (AppAccel)
would otherwise provide.

The functions operate on scaled integer tensors ``(q, scale)`` where the real
value is ``q * scale``; every function returns a new ``(q, scale)`` pair.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["integer_sqrt", "i_exp", "i_softmax", "i_gelu", "i_layernorm", "quantize_activation"]


def quantize_activation(x: np.ndarray, bits: int = 8) -> Tuple[np.ndarray, float]:
    """Symmetric activation quantisation to ``(q, scale)``."""
    x = np.asarray(x, dtype=float)
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = max_abs / qmax if max_abs > 0 else 1.0
    q = np.clip(np.rint(x / scale), -qmax, qmax).astype(np.int64)
    return q, scale


def integer_sqrt(n: np.ndarray) -> np.ndarray:
    """Element-wise integer square root via Newton's method (I-BERT Alg. 4)."""
    n = np.asarray(n, dtype=np.int64)
    result = np.zeros_like(n)
    positive = n > 0
    if not positive.any():
        return result
    x = np.where(positive, np.int64(1) << ((np.int64(np.ceil(np.log2(np.maximum(n, 1)))) + 1) // 2), 1)
    for _ in range(20):
        x_new = (x + n // np.maximum(x, 1)) // 2
        converged = x_new >= x
        x = np.where(converged, x, x_new)
    return np.where(positive, x, 0)


def _i_poly_exp(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Second-order polynomial approximation of exp(x) for x <= 0 (I-BERT)."""
    # exp(x) ~ 0.3585 * (x + 1.353)^2 + 0.344 on [-ln2, 0], with range reduction
    # exp(x) = 2^(-z) * exp(r) where x = -z*ln2 + r.
    ln2 = np.log(2.0)
    q = np.asarray(q, dtype=np.float64) * scale
    z = np.floor(-q / ln2)
    r = q + z * ln2
    poly = 0.3585 * (r + 1.353) ** 2 + 0.344
    values = poly / (2.0 ** z)
    out_scale = values.max() / (2 ** 15 - 1) if values.size and values.max() > 0 else 1.0
    return np.rint(values / out_scale).astype(np.int64), float(out_scale)


def i_exp(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer exponential of non-positive scaled integers."""
    return _i_poly_exp(q, scale)


def i_softmax(q: np.ndarray, scale: float, axis: int = -1) -> Tuple[np.ndarray, float]:
    """Integer softmax along ``axis`` (I-BERT Algorithm 3)."""
    q = np.asarray(q, dtype=np.int64)
    shifted = q - q.max(axis=axis, keepdims=True)
    exp_q, exp_scale = i_exp(shifted, scale)
    denom = exp_q.sum(axis=axis, keepdims=True)
    denom = np.maximum(denom, 1)
    out = exp_q.astype(np.float64) / denom
    out_scale = 1.0 / (2 ** 15)
    return np.rint(out / out_scale).astype(np.int64), out_scale


def i_gelu(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer GELU via the I-BERT sigmoid-polynomial approximation."""
    x = np.asarray(q, dtype=np.float64) * scale
    # erf(x/sqrt(2)) ~ sign(x) * poly(min(|x|, limit)) with a quadratic poly.
    a, b, c = -0.2888, -1.769, 1.0
    clipped = np.minimum(np.abs(x) / np.sqrt(2.0), -b)
    erf_approx = np.sign(x) * (a * (clipped + b) ** 2 + c)
    values = x * 0.5 * (1.0 + erf_approx)
    out_q, out_scale = quantize_activation(values, bits=16)
    return out_q, out_scale


def i_layernorm(q: np.ndarray, scale: float, gamma: np.ndarray, beta: np.ndarray,
                axis: int = -1) -> Tuple[np.ndarray, float]:
    """Integer layer normalisation using the integer square root."""
    q = np.asarray(q, dtype=np.int64)
    mean = q.mean(axis=axis, keepdims=True)
    centered = q - np.rint(mean).astype(np.int64)
    variance = np.maximum((centered.astype(np.float64) ** 2).mean(axis=axis, keepdims=True), 1.0)
    std = integer_sqrt(np.rint(variance).astype(np.int64)).astype(np.float64)
    std = np.maximum(std, 1.0)
    normalised = centered / std
    values = normalised * np.asarray(gamma) + np.asarray(beta)
    out_q, out_scale = quantize_activation(values, bits=16)
    return out_q, out_scale

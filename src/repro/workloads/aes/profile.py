"""Workload profile of AES-128 encryption (per 16-byte block)."""

from __future__ import annotations

from ..profile import MvmOp, WorkloadProfile

__all__ = ["aes_profile"]


def aes_profile(key_bits: int = 128) -> WorkloadProfile:
    """Operation counts for encrypting one block with AES-``key_bits``.

    Structure per round (Section 5.3): SubBytes is 16 table lookups,
    ShiftRows moves 12 bytes, MixColumns is four 32x32 binary MVMs plus a
    parity extraction, and AddRoundKey is a 16-byte XOR.  The final round
    omits MixColumns; an extra AddRoundKey precedes round 1.
    """
    rounds = {128: 10, 192: 12, 256: 14}[key_bits]
    mix_rounds = rounds - 1
    mvm_ops = [MvmOp(rows=32, cols=32, count=4.0 * mix_rounds, label="MixColumns")]
    lookups = 16.0 * rounds                      # SubBytes
    elementwise = (
        16.0 * (rounds + 1)                      # AddRoundKey XOR bytes
        + 12.0 * rounds                          # ShiftRows byte moves
        + 16.0 * mix_rounds                      # parity extraction after MixColumns
    )
    return WorkloadProfile(
        name=f"aes{key_bits}",
        item_name="block",
        mvm_ops=mvm_ops,
        elementwise_ops=elementwise,
        elementwise_width=8,
        lookup_ops=lookups,
        nonlinear_ops=0.0,
        weight_bytes=4 * 32 * 32 / 8 + 256,      # MixColumns bit matrix + S-box
        host_bytes_per_item=2.0 * 16 * rounds,   # state to/from the CPU per round
        batch_parallelism=float("inf"),
        kernel_mvms={"MixColumns": (32, 32, 4.0 * mix_rounds)},
    )

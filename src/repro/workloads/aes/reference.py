"""A complete software reference implementation of AES (FIPS-197).

Supports AES-128/192/256 encryption and decryption of 16-byte blocks, plus
the individual round steps (SubBytes, ShiftRows, MixColumns, AddRoundKey)
exposed separately so the DARTH-PUM mapping can be verified step by step.
The S-box is derived from first principles (multiplicative inverse in
GF(2^8) followed by the affine transform) rather than hard-coded.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .gf import gf_mul

__all__ = [
    "SBOX",
    "INV_SBOX",
    "MIX_COLUMNS_MATRIX",
    "INV_MIX_COLUMNS_MATRIX",
    "key_expansion",
    "sub_bytes",
    "shift_rows",
    "mix_columns",
    "add_round_key",
    "inv_sub_bytes",
    "inv_shift_rows",
    "inv_mix_columns",
    "encrypt_block",
    "decrypt_block",
    "num_rounds",
    "bytes_to_state",
    "state_to_bytes",
]


def _build_sbox() -> np.ndarray:
    """Construct the AES S-box from the GF(2^8) inverse and affine map."""
    # Multiplicative inverses (0 maps to 0 by convention).
    inverse = np.zeros(256, dtype=np.uint8)
    for value in range(1, 256):
        for candidate in range(1, 256):
            if gf_mul(value, candidate) == 1:
                inverse[value] = candidate
                break
    sbox = np.zeros(256, dtype=np.uint8)
    for value in range(256):
        b = int(inverse[value])
        result = 0
        for bit in range(8):
            result |= (
                ((b >> bit) ^ (b >> ((bit + 4) % 8)) ^ (b >> ((bit + 5) % 8))
                 ^ (b >> ((bit + 6) % 8)) ^ (b >> ((bit + 7) % 8)) ^ (0x63 >> bit)) & 1
            ) << bit
        sbox[value] = result
    return sbox


SBOX: np.ndarray = _build_sbox()
INV_SBOX: np.ndarray = np.zeros(256, dtype=np.uint8)
INV_SBOX[SBOX] = np.arange(256, dtype=np.uint8)

#: The MixColumns coefficient matrix (row-major, FIPS-197 Section 5.1.3).
MIX_COLUMNS_MATRIX = np.array(
    [[2, 3, 1, 1],
     [1, 2, 3, 1],
     [1, 1, 2, 3],
     [3, 1, 1, 2]], dtype=np.uint8)

#: The InvMixColumns coefficient matrix.
INV_MIX_COLUMNS_MATRIX = np.array(
    [[14, 11, 13, 9],
     [9, 14, 11, 13],
     [13, 9, 14, 11],
     [11, 13, 9, 14]], dtype=np.uint8)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def num_rounds(key_bytes: int) -> int:
    """Number of AES rounds for a key of ``key_bytes`` bytes (16/24/32)."""
    rounds = {16: 10, 24: 12, 32: 14}
    if key_bytes not in rounds:
        raise ValueError("AES keys must be 16, 24, or 32 bytes")
    return rounds[key_bytes]


def key_expansion(key: Sequence[int]) -> List[np.ndarray]:
    """Expand a key into the per-round 4x4 round-key states."""
    key = np.asarray(list(key), dtype=np.uint8)
    nk = key.shape[0] // 4
    rounds = num_rounds(key.shape[0])
    words = [key[4 * i: 4 * i + 4].copy() for i in range(nk)]
    total_words = 4 * (rounds + 1)
    for i in range(nk, total_words):
        temp = words[i - 1].copy()
        if i % nk == 0:
            temp = np.roll(temp, -1)
            temp = SBOX[temp]
            temp[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = SBOX[temp]
        words.append(words[i - nk] ^ temp)
    round_keys = []
    for round_index in range(rounds + 1):
        block = np.concatenate(words[4 * round_index: 4 * round_index + 4])
        round_keys.append(bytes_to_state(block))
    return round_keys


def bytes_to_state(block: Sequence[int]) -> np.ndarray:
    """Arrange 16 bytes into the AES 4x4 column-major state."""
    block = np.asarray(list(block), dtype=np.uint8)
    if block.shape != (16,):
        raise ValueError("an AES block is exactly 16 bytes")
    return block.reshape(4, 4).T.copy()


def state_to_bytes(state: np.ndarray) -> np.ndarray:
    """Flatten a 4x4 state back into 16 bytes (column-major)."""
    return np.asarray(state, dtype=np.uint8).T.reshape(16).copy()


def sub_bytes(state: np.ndarray) -> np.ndarray:
    """SubBytes: substitute every byte through the S-box."""
    return SBOX[np.asarray(state, dtype=np.uint8)]


def inv_sub_bytes(state: np.ndarray) -> np.ndarray:
    """Inverse SubBytes."""
    return INV_SBOX[np.asarray(state, dtype=np.uint8)]


def shift_rows(state: np.ndarray) -> np.ndarray:
    """ShiftRows: cyclically left-shift row ``r`` by ``r`` bytes."""
    state = np.asarray(state, dtype=np.uint8).copy()
    for row in range(1, 4):
        state[row] = np.roll(state[row], -row)
    return state


def inv_shift_rows(state: np.ndarray) -> np.ndarray:
    """Inverse ShiftRows."""
    state = np.asarray(state, dtype=np.uint8).copy()
    for row in range(1, 4):
        state[row] = np.roll(state[row], row)
    return state


def _mix_single_column(column: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    result = np.zeros(4, dtype=np.uint8)
    for out_row in range(4):
        acc = 0
        for in_row in range(4):
            acc ^= gf_mul(int(matrix[out_row, in_row]), int(column[in_row]))
        result[out_row] = acc
    return result


def mix_columns(state: np.ndarray) -> np.ndarray:
    """MixColumns: multiply each state column by the MDS matrix over GF(2^8)."""
    state = np.asarray(state, dtype=np.uint8)
    output = np.zeros_like(state)
    for col in range(4):
        output[:, col] = _mix_single_column(state[:, col], MIX_COLUMNS_MATRIX)
    return output


def inv_mix_columns(state: np.ndarray) -> np.ndarray:
    """Inverse MixColumns."""
    state = np.asarray(state, dtype=np.uint8)
    output = np.zeros_like(state)
    for col in range(4):
        output[:, col] = _mix_single_column(state[:, col], INV_MIX_COLUMNS_MATRIX)
    return output


def add_round_key(state: np.ndarray, round_key: np.ndarray) -> np.ndarray:
    """AddRoundKey: XOR the state with the round key."""
    return np.asarray(state, dtype=np.uint8) ^ np.asarray(round_key, dtype=np.uint8)


def encrypt_block(plaintext: Sequence[int], key: Sequence[int]) -> np.ndarray:
    """Encrypt a 16-byte block with AES-128/192/256."""
    round_keys = key_expansion(key)
    rounds = len(round_keys) - 1
    state = add_round_key(bytes_to_state(plaintext), round_keys[0])
    for round_index in range(1, rounds):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[round_index])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[rounds])
    return state_to_bytes(state)


def decrypt_block(ciphertext: Sequence[int], key: Sequence[int]) -> np.ndarray:
    """Decrypt a 16-byte block with AES-128/192/256."""
    round_keys = key_expansion(key)
    rounds = len(round_keys) - 1
    state = add_round_key(bytes_to_state(ciphertext), round_keys[rounds])
    for round_index in range(rounds - 1, 0, -1):
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, round_keys[round_index])
        state = inv_mix_columns(state)
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, round_keys[0])
    return state_to_bytes(state)

"""GF(2^8) arithmetic used by AES (Section 5.3).

AES's MixColumns step is a matrix multiply over the Galois field GF(2^8)
with the reduction polynomial ``x^8 + x^4 + x^3 + x + 1`` (0x11B).  The
helpers here implement field multiplication both directly and via the
xtime (multiply-by-2) recurrence, which is the form the DARTH-PUM mapping
exploits: MixColumns only ever multiplies by 1, 2, or 3, so it can be
expressed with a binary matrix MVM followed by XORs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xtime", "gf_mul", "gf_mul_table", "AES_MODULUS"]

#: The AES irreducible polynomial x^8 + x^4 + x^3 + x + 1.
AES_MODULUS = 0x11B


def xtime(value: int) -> int:
    """Multiply ``value`` by 2 in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= AES_MODULUS
    return value & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8) (Russian-peasant method)."""
    a &= 0xFF
    b &= 0xFF
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result & 0xFF


def gf_mul_table(constant: int) -> np.ndarray:
    """A 256-entry lookup table for multiplication by ``constant``."""
    return np.array([gf_mul(value, constant) for value in range(256)], dtype=np.uint8)

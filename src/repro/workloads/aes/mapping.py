"""Mapping AES onto DARTH-PUM (Section 5.3, Figure 12).

The four AES round steps map onto the hybrid compute tile as follows:

* **SubBytes** -- the S-box is pre-loaded into an otherwise unused digital
  pipeline of the HCT and accessed with the element-wise load instruction
  (Section 4.2), one byte per two cycles.
* **ShiftRows** -- a byte permutation of the state, realised with pipelined
  shifts; shifting against the propagation direction uses the
  pipeline-reversal macro.  The functional model performs the permutation
  with element-wise loads (same DCE capability), while the latency model
  charges the reversal-and-shift macro cost the paper describes.
* **MixColumns** -- a matrix multiply over GF(2^8).  Because multiplication
  by the fixed coefficients 1/2/3 is linear over GF(2), one state column's
  32 output bits are a binary 32x32 matrix-vector product of its 32 input
  bits; the matrix is pre-stored in the ACE with 1-bit cells (remapped by
  the parasitic-compensation scheme) and only the least-significant bit of
  each ADC output is needed -- the "subsequent XOR" is a parity extraction.
* **AddRoundKey** -- a bulk XOR in the DCE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...analog.compensation import ParasiticCompensation
from ...core.config import HctConfig
from ...core.hct import HybridComputeTile
from ...errors import MappingError
from .gf import gf_mul
from .reference import SBOX, MIX_COLUMNS_MATRIX, key_expansion, num_rounds

__all__ = [
    "mixcolumns_bit_matrix",
    "columns_to_bits",
    "bits_to_columns",
    "AesKernelCycles",
    "DarthPumAes",
]


def mixcolumns_bit_matrix(coefficients: Optional[np.ndarray] = None) -> np.ndarray:
    """The 32x32 GF(2) matrix implementing MixColumns on one state column.

    ``output_bits = B @ input_bits (mod 2)`` where input/output bits are the
    bits of the four column bytes, least-significant bit first:
    index ``8 * byte_row + bit``.  Entry ``B[i, j]`` is bit ``i%8`` of
    ``gf_mul(M[i//8, j//8], 1 << (j%8))``.
    """
    matrix = MIX_COLUMNS_MATRIX if coefficients is None else np.asarray(coefficients)
    bit_matrix = np.zeros((32, 32), dtype=np.int64)
    for out_byte in range(4):
        for in_byte in range(4):
            coefficient = int(matrix[out_byte, in_byte])
            for in_bit in range(8):
                product = gf_mul(coefficient, 1 << in_bit)
                for out_bit in range(8):
                    if (product >> out_bit) & 1:
                        bit_matrix[8 * out_byte + out_bit, 8 * in_byte + in_bit] = 1
    return bit_matrix


def columns_to_bits(columns: np.ndarray) -> np.ndarray:
    """LSB-first bit expansion of a batch of 4-byte state columns.

    ``columns`` has shape ``(n, 4)``; the result has shape ``(n, 32)`` with
    bit index ``8 * byte + bit`` -- the input layout
    :func:`mixcolumns_bit_matrix` expects.
    """
    columns = np.asarray(columns, dtype=np.int64).reshape(-1, 4)
    return (
        (columns[:, :, None] >> np.arange(8, dtype=np.int64)[None, None, :]) & 1
    ).reshape(-1, 32)


def bits_to_columns(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`columns_to_bits`: repack ``(n, 32)`` bits to bytes."""
    bits = np.asarray(bits, dtype=np.int64).reshape(-1, 4, 8)
    return (bits << np.arange(8, dtype=np.int64)[None, None, :]).sum(axis=2)


@dataclass
class AesKernelCycles:
    """Per-kernel cycle accounting for one encryption (Figure 14)."""

    data_movement: float = 0.0
    sub_bytes: float = 0.0
    shift_rows: float = 0.0
    mix_columns: float = 0.0
    add_round_key: float = 0.0

    def total(self) -> float:
        """Total cycles across all kernels."""
        return (self.data_movement + self.sub_bytes + self.shift_rows
                + self.mix_columns + self.add_round_key)

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as an ordered dictionary (used by the figure harness)."""
        return {
            "DataMovement": self.data_movement,
            "SubBytes": self.sub_bytes,
            "ShiftRows": self.shift_rows,
            "MixColumns": self.mix_columns,
            "AddRoundKey": self.add_round_key,
        }


#: Byte-index permutation applied by ShiftRows on the flattened (block-order)
#: state: ``new[4*c + r] = old[4*((c + r) % 4) + r]``.
_SHIFT_ROWS_PERMUTATION = np.array(
    [4 * ((col + row) % 4) + row for col in range(4) for row in range(4)], dtype=np.int64
)


class DarthPumAes:
    """AES encryption running on a hybrid compute tile.

    The class owns the HCT resources the paper's ``AES_initArrays()`` call
    reserves: an S-box pipeline, a state/scratch pipeline, and the
    MixColumns bit matrix in the ACE.  ``encrypt`` performs a functional
    encryption (bit-exact against the reference implementation) while
    accumulating the per-kernel latency breakdown.
    """

    #: The MixColumns MVM reserves pipelines 0..1 for its column tiles, so
    #: the state, S-box, and scratch pipelines start above them.
    STATE_PIPELINE = 4
    SBOX_PIPELINE = 5
    SCRATCH_PIPELINE = 6

    def __init__(self, tile: Optional[HybridComputeTile] = None,
                 key: Optional[Sequence[int]] = None) -> None:
        self.tile = tile if tile is not None else HybridComputeTile(HctConfig.small())
        if self.tile.config.dce.num_pipelines < 7:
            raise MappingError("AES needs at least 7 digital pipelines in the HCT")
        if self.tile.config.dce.pipeline_depth < 8:
            raise MappingError("AES needs at least 8-bit digital pipelines")
        self.compensation = ParasiticCompensation()
        self._key: Optional[np.ndarray] = None
        self._round_keys: List[np.ndarray] = []
        self._sbox_vrs = 0
        self.kernel_cycles = AesKernelCycles()
        self.init_arrays(key)

    # ------------------------------------------------------------------ #
    # AES_initArrays()                                                     #
    # ------------------------------------------------------------------ #
    def init_arrays(self, key: Optional[Sequence[int]] = None) -> None:
        """Reserve HCT resources: S-box in the DCE, MixColumns matrix in the ACE."""
        tile = self.tile
        # Pre-load the S-box across vector registers of the S-box pipeline.
        sbox_pipeline = tile.pipeline(self.SBOX_PIPELINE)
        rows = sbox_pipeline.rows
        self._sbox_vrs = -(-256 // rows)
        if self._sbox_vrs > sbox_pipeline.num_vrs:
            raise MappingError("the S-box does not fit in one digital pipeline")
        for vr in range(self._sbox_vrs):
            chunk = SBOX[vr * rows: (vr + 1) * rows].astype(np.int64)
            sbox_pipeline.write_vr(vr, chunk)
        # Store the remapped MixColumns bit matrix in 1-bit analog cells.
        # The ACE computes ``x @ M``, so the matrix is stored transposed to
        # realise ``B @ x`` for the column bit vector ``x``.
        bit_matrix = mixcolumns_bit_matrix().T.copy()
        remapped = self.compensation.remap(bit_matrix)
        self.mix_handle = tile.set_matrix(
            remapped, value_bits=1, bits_per_cell=1, output_pipeline=0
        )
        if key is not None:
            self.set_key(key)

    def set_key(self, key: Sequence[int]) -> None:
        """Expand and cache the round keys (host-side key schedule)."""
        self._key = np.asarray(list(key), dtype=np.uint8)
        self._round_keys = key_expansion(self._key)

    # ------------------------------------------------------------------ #
    # Round steps                                                          #
    # ------------------------------------------------------------------ #
    def _load_state(self, block: np.ndarray) -> np.ndarray:
        """Write the 16 plaintext bytes into the state pipeline (row-major state)."""
        state = np.asarray(block, dtype=np.int64)
        pipeline = self.tile.pipeline(self.STATE_PIPELINE)
        pipeline.write_vr(0, state)
        self.kernel_cycles.data_movement += float(pipeline.rows)
        return state

    def _sub_bytes(self, state: np.ndarray) -> np.ndarray:
        """SubBytes with the element-wise load instruction against the S-box."""
        pipeline = self.tile.pipeline(self.STATE_PIPELINE)
        pipeline.write_vr(1, state)  # address register
        cost = self.tile.dce.element_load(
            dst_pipeline=self.STATE_PIPELINE,
            dst_vr=0,
            addr_pipeline=self.STATE_PIPELINE,
            addr_vr=1,
            table_pipeline=self.SBOX_PIPELINE,
            table_base_vr=0,
            num_elements=16,
        )
        self.kernel_cycles.sub_bytes += cost.unpipelined_cycles
        return self.tile.pipeline(self.STATE_PIPELINE).read_vr(0)[:16]

    def _shift_rows(self, state: np.ndarray) -> np.ndarray:
        """ShiftRows as a byte permutation via element-wise loads.

        The latency charged follows the paper's pipelined-shift realisation:
        a pipeline-reversal macro (drain of ``depth`` cycles) plus one shift
        per byte position moved.
        """
        pipeline = self.tile.pipeline(self.STATE_PIPELINE)
        scratch = self.tile.pipeline(self.SCRATCH_PIPELINE)
        scratch.write_vr(0, state)                       # state as lookup table
        pipeline.write_vr(1, _SHIFT_ROWS_PERMUTATION)    # gather addresses
        self.tile.dce.element_load(
            dst_pipeline=self.STATE_PIPELINE,
            dst_vr=0,
            addr_pipeline=self.STATE_PIPELINE,
            addr_vr=1,
            table_pipeline=self.SCRATCH_PIPELINE,
            table_base_vr=0,
            num_elements=16,
        )
        depth = pipeline.depth
        shifts = 1 + 2 + 3  # rows 1-3 rotate by 1, 2, 3 byte positions
        self.kernel_cycles.shift_rows += float(depth + 8 * shifts)
        return pipeline.read_vr(0)[:16]

    def _mix_columns(self, state: np.ndarray) -> np.ndarray:
        """MixColumns through the ACE: the four state columns as one batched MVM.

        Block order: AES state column ``c`` is bytes ``state[4c..4c+3]``;
        each column's 32 input bits form one row of a ``(4, 32)`` batch that
        the ACE streams through the remapped bit matrix in a single arbiter
        pass (previously four separate ``execute_mvm`` calls).
        """
        columns = np.asarray(state, dtype=np.int64).reshape(4, 4)
        input_bits = columns_to_bits(columns)
        result = self.tile.execute_mvm_batch(
            self.mix_handle,
            input_bits,
            input_bits=1,
            compensation=self.compensation,
            active_adc_bits=2,
        )
        self.kernel_cycles.mix_columns += result.optimized_cycles
        parity = result.values & 1  # the "subsequent XOR": only the LSB matters
        output = bits_to_columns(parity).reshape(16)
        # Parity extraction (AND with 1) in the DCE.
        pipeline = self.tile.pipeline(self.STATE_PIPELINE)
        pipeline.write_vr(0, output)
        self.kernel_cycles.mix_columns += 3.0  # one AND word-op (OSCAR: 3 µops)
        return output

    def _add_round_key(self, state: np.ndarray, round_key_bytes: np.ndarray) -> np.ndarray:
        """AddRoundKey: XOR in the DCE."""
        pipeline = self.tile.pipeline(self.STATE_PIPELINE)
        pipeline.write_vr(0, state)
        pipeline.write_vr(1, round_key_bytes.astype(np.int64))
        cost = pipeline.xor(0, 0, 1)
        self.kernel_cycles.add_round_key += cost.unpipelined_cycles
        self.kernel_cycles.data_movement += float(pipeline.rows)
        return pipeline.read_vr(0)[:16]

    # ------------------------------------------------------------------ #
    # AES_encrypt()                                                        #
    # ------------------------------------------------------------------ #
    def encrypt(self, plaintext: Sequence[int], key: Optional[Sequence[int]] = None) -> np.ndarray:
        """Encrypt one 16-byte block on the hybrid compute tile."""
        if key is not None:
            self.set_key(key)
        if self._key is None:
            raise MappingError("no key has been set; pass one to encrypt() or set_key()")
        plaintext = np.asarray(list(plaintext), dtype=np.int64)
        if plaintext.shape != (16,):
            raise MappingError("an AES block is exactly 16 bytes")
        rounds = num_rounds(self._key.shape[0])
        # Round keys as column-major byte sequences matching the state layout.
        round_key_bytes = [
            np.asarray(rk, dtype=np.uint8).T.reshape(16) for rk in self._round_keys
        ]

        state = self._load_state(plaintext)
        state = self._add_round_key(state, round_key_bytes[0])
        for round_index in range(1, rounds):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, round_key_bytes[round_index])
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state = self._add_round_key(state, round_key_bytes[rounds])
        self.kernel_cycles.data_movement += float(self.tile.pipeline(self.STATE_PIPELINE).rows)
        return state.astype(np.uint8)

    def encrypt_bytes(self, plaintext: bytes, key: bytes) -> bytes:
        """Convenience wrapper encrypting a single 16-byte ``bytes`` block."""
        return bytes(self.encrypt(list(plaintext), list(key)))

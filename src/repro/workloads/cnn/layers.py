"""Layer abstractions for the CNN workload.

Each layer implements ``forward`` (numpy, NCHW) and reports whether it can
be accelerated by analog MVM (convolution and fully connected layers) or
must run as digital PUM vector work (bias, batch norm, activations, pooling,
residual adds) -- the split Section 5.1 describes.  ``mvm_shape`` exposes
the Toeplitz-expanded MVM dimensions used by both the HCT mapping and the
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .tensors import avg_pool2d, conv2d, global_avg_pool, max_pool2d

__all__ = [
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Add",
]


@dataclass
class Layer:
    """Base class: a named, optionally MVM-accelerable operation."""

    name: str = "layer"

    #: Whether the layer's bulk compute maps onto analog MVM.
    is_mvm = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output."""
        raise NotImplementedError

    def parameter_count(self) -> int:
        """Number of trainable parameters."""
        return 0

    def mvm_shape(self, input_shape: Tuple[int, ...]) -> Optional[Tuple[int, int]]:
        """(rows, cols) of the layer's Toeplitz MVM for one input, if any."""
        return None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output for an input of ``input_shape`` (without batch)."""
        raise NotImplementedError


class Conv2d(Layer):
    """2-D convolution layer."""

    is_mvm = True

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, padding: int = 1, name: str = "conv",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(name=name)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        rng = rng if rng is not None else np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        self.weight = rng.normal(0.0, np.sqrt(2.0 / fan_in),
                                 size=(out_channels, in_channels, kernel, kernel))
        self.bias = np.zeros(out_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def parameter_count(self) -> int:
        return self.weight.size + self.bias.size

    def output_shape(self, input_shape):
        _, h, w = input_shape
        out_h = (h + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (w + 2 * self.padding - self.kernel) // self.stride + 1
        return (self.out_channels, out_h, out_w)

    def mvm_shape(self, input_shape):
        _, out_h, out_w = self.output_shape(input_shape)
        rows = self.in_channels * self.kernel * self.kernel
        cols = self.out_channels
        # One MVM per output position; the mapping batches them as vectors.
        return (rows, cols)

    def mvm_count(self, input_shape) -> int:
        """Number of per-position MVMs for one input image."""
        _, out_h, out_w = self.output_shape(input_shape)
        return out_h * out_w


class Linear(Layer):
    """Fully connected layer."""

    is_mvm = True

    def __init__(self, in_features: int, out_features: int, name: str = "fc",
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(name=name)
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = rng.normal(0.0, np.sqrt(2.0 / in_features), size=(in_features, out_features))
        self.bias = np.zeros(out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x) @ self.weight + self.bias

    def parameter_count(self) -> int:
        return self.weight.size + self.bias.size

    def output_shape(self, input_shape):
        return (self.out_features,)

    def mvm_shape(self, input_shape):
        return (self.in_features, self.out_features)

    def mvm_count(self, input_shape) -> int:
        """One MVM per input vector."""
        return 1


class BatchNorm2d(Layer):
    """Batch normalisation with fixed (inference) statistics."""

    def __init__(self, channels: int, name: str = "bn") -> None:
        super().__init__(name=name)
        self.channels = channels
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.eps = 1e-5

    def forward(self, x: np.ndarray) -> np.ndarray:
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        shift = self.beta - self.running_mean * scale
        return x * scale[None, :, None, None] + shift[None, :, None, None]

    def parameter_count(self) -> int:
        return 2 * self.channels

    def output_shape(self, input_shape):
        return input_shape


class ReLU(Layer):
    """Rectified linear activation (digital PUM territory)."""

    def __init__(self, name: str = "relu") -> None:
        super().__init__(name=name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)

    def output_shape(self, input_shape):
        return input_shape


class MaxPool2d(Layer):
    """Max pooling."""

    def __init__(self, kernel: int = 2, stride: Optional[int] = None, name: str = "maxpool") -> None:
        super().__init__(name=name)
        self.kernel = kernel
        self.stride = kernel if stride is None else stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        return max_pool2d(x, self.kernel, self.stride)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c, (h - self.kernel) // self.stride + 1, (w - self.kernel) // self.stride + 1)


class AvgPool2d(Layer):
    """Average pooling."""

    def __init__(self, kernel: int = 2, stride: Optional[int] = None, name: str = "avgpool") -> None:
        super().__init__(name=name)
        self.kernel = kernel
        self.stride = kernel if stride is None else stride

    def forward(self, x: np.ndarray) -> np.ndarray:
        return avg_pool2d(x, self.kernel, self.stride)

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (c, (h - self.kernel) // self.stride + 1, (w - self.kernel) // self.stride + 1)


class GlobalAvgPool(Layer):
    """Global average pooling to a (C,) vector."""

    def __init__(self, name: str = "gap") -> None:
        super().__init__(name=name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return global_avg_pool(x)

    def output_shape(self, input_shape):
        return (input_shape[0],)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self, name: str = "flatten") -> None:
        super().__init__(name=name)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x).reshape(x.shape[0], -1)

    def output_shape(self, input_shape):
        total = 1
        for dim in input_shape:
            total *= dim
        return (total,)


class Add(Layer):
    """Residual addition of two tensors (digital PUM vector add)."""

    def __init__(self, name: str = "add") -> None:
        super().__init__(name=name)

    def forward(self, x: np.ndarray, shortcut: np.ndarray | None = None) -> np.ndarray:
        if shortcut is None:
            return x
        return x + shortcut

    def output_shape(self, input_shape):
        return input_shape

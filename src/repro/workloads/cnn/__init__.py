"""CNN workload: numpy NN framework, ResNet-20, quantisation, DARTH-PUM mapping."""

from .dataset import SyntheticCifar10, make_class_prototypes
from .layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from .mapping import (
    CnnMapping,
    LayerPlacement,
    NoisyInferenceEngine,
    resnet20_profile,
    run_conv_on_tile,
)
from .quantize import QuantizedTensor, dequantize, quantize, quantize_per_output
from .resnet import CIFAR10_INPUT_SHAPE, BasicBlock, ResNet20, resnet20
from .tensors import avg_pool2d, conv2d, global_avg_pool, im2col, max_pool2d, pad_nchw

__all__ = [
    "Add",
    "AvgPool2d",
    "BasicBlock",
    "BatchNorm2d",
    "CIFAR10_INPUT_SHAPE",
    "CnnMapping",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "LayerPlacement",
    "Linear",
    "MaxPool2d",
    "NoisyInferenceEngine",
    "QuantizedTensor",
    "ReLU",
    "ResNet20",
    "SyntheticCifar10",
    "avg_pool2d",
    "conv2d",
    "dequantize",
    "global_avg_pool",
    "im2col",
    "make_class_prototypes",
    "max_pool2d",
    "pad_nchw",
    "quantize",
    "quantize_per_output",
    "resnet20",
    "resnet20_profile",
    "run_conv_on_tile",
]

"""Mapping CNNs (ResNet-20) onto DARTH-PUM (Section 5.1).

``CNN_setModel()`` distributes the network's layers across hybrid compute
tiles: convolution and fully connected weight matrices (in their Toeplitz
form) go into analog arrays, while batch norm, activations, pooling, and
residual adds stay in the digital pipelines.  This module provides:

* the per-layer HCT allocation plan,
* a functional path that runs one (quantised) convolution through a real
  hybrid compute tile and checks it against the float reference,
* the workload profile used by the performance models (Figures 13-18), and
* a noise-injected inference engine for the Section 7.5 accuracy study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.config import HctConfig
from ...core.hct import HybridComputeTile
from ...errors import MappingError
from ..profile import MvmOp, WorkloadProfile
from .layers import Conv2d
from .quantize import quantize
from .resnet import ResNet20
from .tensors import im2col

__all__ = [
    "LayerPlacement",
    "CnnMapping",
    "resnet20_profile",
    "run_conv_on_tile",
    "NoisyInferenceEngine",
]


@dataclass(frozen=True)
class LayerPlacement:
    """Where one MVM-capable layer lives and how big its matrix is."""

    label: str
    rows: int
    cols: int
    mvms_per_inference: int
    hcts_needed: int
    weight_bytes: int


class CnnMapping:
    """Per-layer distribution of a CNN over hybrid compute tiles."""

    def __init__(self, model: ResNet20, hct_config: Optional[HctConfig] = None,
                 weight_bits: int = 8, bits_per_cell: int = 1) -> None:
        self.model = model
        self.hct_config = hct_config if hct_config is not None else HctConfig.paper_default()
        self.weight_bits = weight_bits
        self.bits_per_cell = bits_per_cell
        self.placements: List[LayerPlacement] = self._place_layers()

    def _place_layers(self) -> List[LayerPlacement]:
        ace = self.hct_config.ace
        slices = -(-self.weight_bits // self.bits_per_cell)
        placements = []
        for label, layer, input_shape in self.model.named_mvm_layers():
            rows, cols = layer.mvm_shape(input_shape)
            row_tiles = -(-rows // ace.array_rows)
            col_tiles = -(-cols // ace.array_cols)
            arrays = row_tiles * col_tiles * slices
            hcts = -(-arrays // ace.num_arrays)
            count = layer.mvm_count(input_shape) if hasattr(layer, "mvm_count") else 1
            placements.append(
                LayerPlacement(
                    label=label,
                    rows=rows,
                    cols=cols,
                    mvms_per_inference=int(count),
                    hcts_needed=int(hcts),
                    weight_bytes=int(rows * cols * self.weight_bits / 8),
                )
            )
        return placements

    @property
    def total_hcts(self) -> int:
        """HCTs needed to hold every layer simultaneously (per-layer mapping)."""
        return sum(p.hcts_needed for p in self.placements)

    @property
    def total_weight_bytes(self) -> int:
        """Total weight footprint of the mapped network."""
        return sum(p.weight_bytes for p in self.placements)

    def placement_for(self, label: str) -> LayerPlacement:
        """The placement record of a named layer."""
        for placement in self.placements:
            if placement.label == label:
                return placement
        raise MappingError(f"no layer named {label!r} in the mapping")


def run_conv_on_tile(
    tile: HybridComputeTile,
    conv: Conv2d,
    image: np.ndarray,
    positions: int = 4,
    weight_bits: int = 6,
    activation_bits: int = 6,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run a few output positions of a convolution through a real HCT.

    The convolution weights are quantised and programmed into the ACE in
    Toeplitz form; ``positions`` input patches are then pushed through the
    hybrid MVM path (analog partial products + digital reduction).  Returns
    ``(device_result, reference_result)`` as dequantised floats so callers
    can compare them within quantisation tolerance.
    """
    image = np.asarray(image)
    if image.ndim != 4:
        raise MappingError("run_conv_on_tile expects an NCHW image batch")
    patches, _, _ = im2col(image, conv.kernel, conv.stride, conv.padding)
    weight_matrix = conv.weight.reshape(conv.out_channels, -1).T  # (rows, cols)

    q_weight = quantize(weight_matrix, bits=weight_bits)
    q_patches = quantize(patches[:positions], bits=activation_bits)
    handle = tile.set_matrix(q_weight.values, value_bits=weight_bits,
                             bits_per_cell=1, output_pipeline=0)

    count = min(positions, q_patches.values.shape[0])
    vectors = q_patches.values[:count].astype(np.int64)
    # The ACE applies non-negative bit-sliced inputs, so shift each input
    # into the positive range and subtract the constant column afterwards
    # (standard trick: x @ W = (x + o) @ W - o * sum(W, axis=0)).
    offsets = np.maximum(0, -vectors.min(axis=1))
    shifted = vectors + offsets[:, None]
    result = tile.execute_mvm_batch(handle, shifted, input_bits=activation_bits + 1)
    corrections = offsets[:, None] * q_weight.values.sum(axis=0)[None, :]
    device = (result.values - corrections).astype(float) * q_weight.scale * q_patches.scale
    reference = patches[:count] @ weight_matrix
    tile.release_matrix(handle)
    return device, reference


def resnet20_profile(model: Optional[ResNet20] = None, batch: int = 1) -> WorkloadProfile:
    """Workload profile of one ResNet-20 inference (CIFAR-10 shapes)."""
    model = model if model is not None else ResNet20()
    mvm_ops: List[MvmOp] = []
    kernel_mvms: Dict[str, Tuple[int, int, float]] = {}
    elementwise = 0.0
    weight_bytes = 0.0
    host_bytes = 0.0
    for label, layer, input_shape in model.named_mvm_layers():
        rows, cols = layer.mvm_shape(input_shape)
        count = layer.mvm_count(input_shape)
        mvm_ops.append(MvmOp(rows=rows, cols=cols, count=float(count), label=label))
        kernel_mvms[label] = (rows, cols, float(count))
        weight_bytes += rows * cols  # one byte per 8-bit weight
        # Batch norm + ReLU + (for half the layers) a residual add touch every
        # output element once each.
        output_elements = cols * count
        elementwise += 3.0 * output_elements
        # The analog+CPU baseline ships every layer's activations to the CPU
        # and back for the non-MVM work (bias/BN/ReLU/residual).
        host_bytes += 2.0 * output_elements
    # Global average pooling and the softmax-free argmax are small but real.
    elementwise += 64 * 8 * 8
    profile = WorkloadProfile(
        name="resnet20",
        item_name="inference",
        mvm_ops=mvm_ops,
        elementwise_ops=elementwise,
        elementwise_width=8,
        lookup_ops=0.0,
        nonlinear_ops=0.0,
        weight_bytes=weight_bytes,
        host_bytes_per_item=host_bytes,
        kernel_mvms=kernel_mvms,
    )
    return profile if batch == 1 else profile.scaled(batch)


@dataclass
class NoisyInferenceEngine:
    """ResNet-20 inference with analog-MVM noise injection (Section 7.5).

    Every convolution / fully connected product is computed through the
    quantise -> analog-error -> dequantise pipeline: weights and activations
    are quantised to ``bits``, the ideal integer MVM is perturbed by a
    Gaussian error whose standard deviation is ``noise_lsb`` ADC
    least-significant bits, and the result is dequantised.  ``noise_lsb=0``
    recovers plain quantised inference.
    """

    model: ResNet20
    bits: int = 8
    noise_lsb: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _noisy_matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        q_x = quantize(x, bits=self.bits)
        q_w = quantize(w, bits=self.bits)
        ideal = q_x.values.astype(np.float64) @ q_w.values.astype(np.float64)
        if self.noise_lsb > 0:
            ideal = ideal + self._rng.normal(0.0, self.noise_lsb, size=ideal.shape)
        return ideal * q_x.scale * q_w.scale

    def _conv(self, x: np.ndarray, conv: Conv2d) -> np.ndarray:
        patches, out_h, out_w = im2col(x, conv.kernel, conv.stride, conv.padding)
        weight_matrix = conv.weight.reshape(conv.out_channels, -1).T
        result = self._noisy_matmul(patches, weight_matrix) + conv.bias
        n = x.shape[0]
        return result.reshape(n, out_h, out_w, conv.out_channels).transpose(0, 3, 1, 2)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Noise-injected inference returning logits."""
        model = self.model
        out = np.maximum(model.bn1.forward(self._conv(x, model.conv1)), 0)
        for blocks in model.stages:
            for block in blocks:
                branch = np.maximum(block.bn1.forward(self._conv(out, block.conv1)), 0)
                branch = block.bn2.forward(self._conv(branch, block.conv2))
                shortcut = out if block.downsample is None else self._conv(out, block.downsample)
                out = np.maximum(branch + shortcut, 0)
        pooled = model.gap.forward(out)
        return self._noisy_matmul(pooled, model.fc.weight) + model.fc.bias

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a labelled batch."""
        predictions = np.argmax(self.forward(images), axis=1)
        return float(np.mean(predictions == labels))

"""ResNet-20 for CIFAR-10 shaped inputs (He et al.), evaluated in Section 7.

ResNet-20 is the standard CIFAR-10 residual network: an initial 3x3
convolution (16 channels), three stages of three basic blocks each
(16/32/64 channels, stride-2 downsampling between stages with a 1x1
projection shortcut), global average pooling, and a 10-way fully connected
classifier.  The per-layer names match the labels of Figure 15
(``c1-Conv1``, ``r1-b0-Conv1`` ... ``r3-b2-Conv2``, ``r2-ds``, ``r3-ds``,
``Seq-b4-Seq`` for the final classifier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .layers import BatchNorm2d, Conv2d, GlobalAvgPool, Linear

__all__ = ["BasicBlock", "ResNet20", "resnet20", "CIFAR10_INPUT_SHAPE"]

#: (channels, height, width) of a CIFAR-10 image.
CIFAR10_INPUT_SHAPE: Tuple[int, int, int] = (3, 32, 32)


@dataclass
class BasicBlock:
    """A two-convolution residual block with an optional projection shortcut."""

    conv1: Conv2d
    bn1: BatchNorm2d
    conv2: Conv2d
    bn2: BatchNorm2d
    downsample: Optional[Conv2d] = None
    name: str = "block"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Block forward pass with the residual add and ReLUs."""
        out = np.maximum(self.bn1.forward(self.conv1.forward(x)), 0)
        out = self.bn2.forward(self.conv2.forward(out))
        shortcut = x if self.downsample is None else self.downsample.forward(x)
        return np.maximum(out + shortcut, 0)

    def conv_layers(self) -> List[Tuple[str, Conv2d]]:
        """Named convolution layers of the block (for Figure 15 labelling)."""
        layers = [(f"{self.name}-Conv1", self.conv1), (f"{self.name}-Conv2", self.conv2)]
        return layers


class ResNet20:
    """The full ResNet-20 network."""

    def __init__(self, num_classes: int = 10, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.conv1 = Conv2d(3, 16, kernel=3, stride=1, padding=1, name="c1-Conv1", rng=rng)
        self.bn1 = BatchNorm2d(16)
        self.stages: List[List[BasicBlock]] = []
        channels = [16, 32, 64]
        in_channels = 16
        for stage_index, out_channels in enumerate(channels, start=1):
            blocks: List[BasicBlock] = []
            for block_index in range(3):
                stride = 2 if stage_index > 1 and block_index == 0 else 1
                name = f"r{stage_index}-b{block_index}"
                downsample = None
                if stride != 1 or in_channels != out_channels:
                    downsample = Conv2d(in_channels, out_channels, kernel=1, stride=stride,
                                        padding=0, name=f"r{stage_index}-ds", rng=rng)
                blocks.append(
                    BasicBlock(
                        conv1=Conv2d(in_channels, out_channels, 3, stride, 1,
                                     name=f"{name}-Conv1", rng=rng),
                        bn1=BatchNorm2d(out_channels),
                        conv2=Conv2d(out_channels, out_channels, 3, 1, 1,
                                     name=f"{name}-Conv2", rng=rng),
                        bn2=BatchNorm2d(out_channels),
                        downsample=downsample,
                        name=name,
                    )
                )
                in_channels = out_channels
            self.stages.append(blocks)
        self.gap = GlobalAvgPool()
        self.fc = Linear(64, num_classes, name="Seq-b4-Seq", rng=rng)

    # ------------------------------------------------------------------ #
    # Inference                                                            #
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full inference: (N, 3, 32, 32) -> (N, num_classes) logits."""
        out = np.maximum(self.bn1.forward(self.conv1.forward(x)), 0)
        for blocks in self.stages:
            for block in blocks:
                out = block.forward(out)
        pooled = self.gap.forward(out)
        return self.fc.forward(pooled)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions."""
        return np.argmax(self.forward(x), axis=1)

    # ------------------------------------------------------------------ #
    # Introspection used by the mapping and the figures                    #
    # ------------------------------------------------------------------ #
    def named_mvm_layers(self) -> List[Tuple[str, object, Tuple[int, int, int]]]:
        """Every MVM-capable layer with its name and input shape.

        Returns a list of ``(figure_label, layer, input_shape)`` covering the
        layers plotted in Figure 15, in network order.
        """
        entries: List[Tuple[str, object, Tuple[int, int, int]]] = []
        shape = CIFAR10_INPUT_SHAPE
        entries.append(("c1-Conv1", self.conv1, shape))
        shape = self.conv1.output_shape(shape)
        for stage_index, blocks in enumerate(self.stages, start=1):
            for block_index, block in enumerate(blocks):
                entries.append((f"r{stage_index}-b{block_index}-Conv1", block.conv1, shape))
                mid_shape = block.conv1.output_shape(shape)
                entries.append((f"r{stage_index}-b{block_index}-Conv2", block.conv2, mid_shape))
                if block.downsample is not None:
                    entries.append((f"r{stage_index}-ds", block.downsample, shape))
                shape = block.conv2.output_shape(mid_shape)
        entries.append(("Seq-b4-Seq", self.fc, (64,)))
        return entries

    def parameter_count(self) -> int:
        """Total trainable parameters (ResNet-20 has roughly 0.27M)."""
        total = self.conv1.parameter_count() + self.bn1.parameter_count()
        for blocks in self.stages:
            for block in blocks:
                total += block.conv1.parameter_count() + block.bn1.parameter_count()
                total += block.conv2.parameter_count() + block.bn2.parameter_count()
                if block.downsample is not None:
                    total += block.downsample.parameter_count()
        return total + self.fc.parameter_count()

    def layer_summary(self) -> Dict[str, Tuple[int, int]]:
        """Mapping of figure label -> Toeplitz MVM (rows, cols) per layer."""
        return {
            label: layer.mvm_shape(shape)
            for label, layer, shape in self.named_mvm_layers()
        }


def resnet20(num_classes: int = 10, seed: int = 0) -> ResNet20:
    """Factory mirroring the torchvision-style constructor name."""
    return ResNet20(num_classes=num_classes, seed=seed)

"""Symmetric integer quantisation for analog-PUM execution.

Analog crossbars store integer conductance levels, so weights and
activations must be quantised before they can be programmed or applied.
We use symmetric per-tensor quantisation: ``q = clip(round(x / scale))``
with ``scale = max(|x|) / (2**(bits-1) - 1)``, which is the standard scheme
for PUM CNN accelerators (ISAAC and descendants) and what the paper's 8-bit
operands imply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import QuantizationError

__all__ = ["QuantizedTensor", "quantize", "dequantize", "quantize_per_output"]


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale that recovers the real values."""

    values: np.ndarray
    scale: float
    bits: int

    def dequantize(self) -> np.ndarray:
        """Recover approximate real values."""
        return self.values.astype(float) * self.scale

    @property
    def qmax(self) -> int:
        """Largest representable magnitude."""
        return 2 ** (self.bits - 1) - 1


def quantize(x: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetric quantisation of ``x`` to ``bits`` signed bits."""
    if bits < 2:
        raise QuantizationError("quantisation needs at least 2 bits for sign + magnitude")
    x = np.asarray(x, dtype=float)
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    scale = max_abs / qmax if max_abs > 0 else 1.0
    values = np.clip(np.rint(x / scale), -qmax, qmax).astype(np.int64)
    return QuantizedTensor(values=values, scale=scale, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Recover approximate real values from a quantised tensor."""
    return q.dequantize()


def quantize_per_output(weight: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Per-output-column quantisation of a 2-D weight matrix.

    Uses a single shared scale (the maximum over columns) so the result can
    still be programmed as one analog matrix, but clips less aggressively
    than naive per-tensor quantisation when column ranges are skewed.
    """
    weight = np.asarray(weight, dtype=float)
    if weight.ndim != 2:
        raise QuantizationError("quantize_per_output expects a 2-D weight matrix")
    return quantize(weight, bits=bits)

"""Minimal tensor operations for the CNN workload (NCHW layout).

Convolution is implemented through an im2col (Toeplitz) expansion, which is
exactly the transformation DARTH-PUM uses to map convolution layers onto
analog MVMs (Section 5.1): each output position becomes one row of a matrix
whose columns are the flattened receptive fields, so a convolution is a
single (input-patches x filter-matrix) multiply.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["im2col", "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool", "pad_nchw"]


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col(x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0) -> Tuple[np.ndarray, int, int]:
    """Toeplitz expansion of an NCHW tensor.

    Returns ``(patches, out_h, out_w)`` where ``patches`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)``: one row per output
    position, one column per weight of the receptive field.
    """
    x = pad_nchw(np.asarray(x), padding)
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    patches = np.zeros((n, out_h, out_w, c, kernel, kernel), dtype=x.dtype)
    for i in range(out_h):
        for j in range(out_w):
            patches[:, i, j] = x[:, :, i * stride: i * stride + kernel, j * stride: j * stride + kernel]
    return patches.reshape(n * out_h * out_w, c * kernel * kernel), out_h, out_w


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """2-D convolution via im2col.  ``weight`` has shape (O, C, K, K)."""
    x = np.asarray(x)
    weight = np.asarray(weight)
    n = x.shape[0]
    out_channels, in_channels, kernel, _ = weight.shape
    patches, out_h, out_w = im2col(x, kernel, stride, padding)
    weight_matrix = weight.reshape(out_channels, in_channels * kernel * kernel).T
    result = patches @ weight_matrix
    if bias is not None:
        result = result + bias
    return result.reshape(n, out_h, out_w, out_channels).transpose(0, 3, 1, 2)


def max_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    result = np.full((n, c, out_h, out_w), -np.inf, dtype=float)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, :, i * stride: i * stride + kernel, j * stride: j * stride + kernel]
            result[:, :, i, j] = window.reshape(n, c, -1).max(axis=2)
    return result.astype(x.dtype) if np.issubdtype(x.dtype, np.floating) else result


def avg_pool2d(x: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Average pooling over windows."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    result = np.zeros((n, c, out_h, out_w), dtype=float)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, :, i * stride: i * stride + kernel, j * stride: j * stride + kernel]
            result[:, :, i, j] = window.reshape(n, c, -1).mean(axis=2)
    return result


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling: (N, C, H, W) -> (N, C)."""
    return np.asarray(x, dtype=float).mean(axis=(2, 3))

"""Synthetic CIFAR-10-shaped dataset.

The paper evaluates ResNet-20 on CIFAR-10; that dataset is not available in
this offline environment, so we substitute a synthetic dataset with the same
tensor shapes (3x32x32 images, 10 classes) whose classes are separable by
simple per-class colour/frequency statistics.  This keeps the full inference
and accuracy-under-noise pipelines exercisable end to end; DESIGN.md records
the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SyntheticCifar10", "make_class_prototypes"]


def make_class_prototypes(num_classes: int = 10, seed: int = 7) -> np.ndarray:
    """Per-class prototype images with distinct spatial/colour structure."""
    rng = np.random.default_rng(seed)
    prototypes = np.zeros((num_classes, 3, 32, 32))
    ys, xs = np.meshgrid(np.linspace(0, 1, 32), np.linspace(0, 1, 32), indexing="ij")
    for cls in range(num_classes):
        colour = rng.uniform(-1, 1, size=3)
        fx, fy = rng.integers(1, 5, size=2)
        pattern = np.sin(2 * np.pi * fx * xs) * np.cos(2 * np.pi * fy * ys)
        for channel in range(3):
            prototypes[cls, channel] = colour[channel] * pattern
    return prototypes


@dataclass
class SyntheticCifar10:
    """A generator of labelled synthetic 3x32x32 images."""

    num_classes: int = 10
    noise_std: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self.prototypes = make_class_prototypes(self.num_classes, self.seed)

    def sample(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` images and labels."""
        labels = self._rng.integers(0, self.num_classes, size=count)
        images = self.prototypes[labels] + self._rng.normal(
            0.0, self.noise_std, size=(count, 3, 32, 32)
        )
        return images.astype(np.float64), labels.astype(np.int64)

    def batches(self, count: int, batch_size: int):
        """Yield ``(images, labels)`` batches totalling ``count`` samples."""
        remaining = count
        while remaining > 0:
            size = min(batch_size, remaining)
            yield self.sample(size)
            remaining -= size

"""Per-architecture, per-workload performance-model presets (Section 6).

Each factory returns a :class:`~repro.baselines.unit_model.UnitBasedModel`
configured for one of the paper's evaluated platforms:

* ``baseline``     -- Intel Core i7-13700 + a 1.5 GB analog ReRAM accelerator
* ``digital_pum``  -- an iso-area RACER/OSCAR digital-PUM chip (5.3 GB)
* ``darth_pum``    -- the DARTH-PUM chip (1860 SAR-ADC HCTs or 1660 ramp)
* ``app_accel``    -- the per-workload application-specific accelerator
* ``gpu``          -- an NVIDIA RTX 4090-class GPU

The per-unit rates are first-order analytical estimates from each platform's
published parameters; a small set of efficiency factors (named constants
below) is calibrated so the relative results reproduce the paper's shape.
EXPERIMENTS.md records paper-vs-measured numbers for every figure.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.area import AreaModel, Table3
from ..core.config import HctConfig
from ..errors import ConfigurationError
from .unit_model import UnitBasedModel

__all__ = [
    "WORKLOAD_MAC_BIT_PRODUCT",
    "darth_pum_model",
    "baseline_model",
    "digital_pum_model",
    "app_accel_model",
    "gpu_model",
    "model_for",
]

#: Product of input bits and weight bits for each workload's MVMs (AES uses
#: binary matrices and binary inputs; the ML workloads use 8-bit operands).
WORKLOAD_MAC_BIT_PRODUCT: Dict[str, int] = {
    "aes128": 1,
    "aes192": 1,
    "aes256": 1,
    "resnet20": 64,
    "llm_encoder": 32,  # 8-bit weights stored 2 bits/cell
}

#: Hybrid compute tiles needed to hold one resident copy of each model.
#: AES needs a single tile (S-box + MixColumns matrix); the ML models are
#: computed from their mappings and rounded to the values those give.
_HCTS_PER_MODEL_COPY: Dict[str, int] = {
    "aes128": 1,
    "aes192": 1,
    "aes256": 1,
    "resnet20": 27,
    "llm_encoder": 648,
}

#: Per-item serialisation overhead on DARTH-PUM (seconds) and the matching
#: coordination energy (joules): round/layer sequencing, register staging,
#: and pipeline fill work that the coarse profile counts do not enumerate.
#: AES: ~250 cycles per round for 10 rounds; ResNet-20: ~4k cycles per layer
#: for 22 MVM layers (pipeline fill + partial-sum merges).
_DARTH_ITEM_OVERHEAD: Dict[str, tuple] = {
    "aes128": (2.5e-6, 30.0e-9),
    "aes192": (3.0e-6, 36.0e-9),
    "aes256": (3.5e-6, 42.0e-9),
    "resnet20": (9.0e-5, 8.0e-6),
    "llm_encoder": (2.0e-5, 5.0e-4),
}


def _bit_product(workload: str) -> int:
    for key, value in WORKLOAD_MAC_BIT_PRODUCT.items():
        if workload.startswith(key.rstrip("0123456789")) or workload == key:
            return value
    return WORKLOAD_MAC_BIT_PRODUCT.get(workload, 64)


# --------------------------------------------------------------------------- #
# DARTH-PUM                                                                    #
# --------------------------------------------------------------------------- #
#: 1-bit MAC throughput of one HCT's ACE (bit-MACs per cycle): 64 arrays of
#: 64x64 devices producing one partial product per rate-matched 64-cycle step.
_DARTH_BITMACS_PER_CYCLE_PER_HCT = 64 * 64 * 64 / 64.0
#: Digital pipelines concurrently active per HCT (power envelope).
_DARTH_ACTIVE_PIPELINES = 16
#: Cycles per 8-bit element-wise word operation in a bit-pipelined stream.
_DARTH_CYCLES_PER_ELEMENTWISE = 12.0
#: Cycles per element of an I-BERT style non-linear kernel in the DCE.
_DARTH_CYCLES_PER_NONLINEAR = 300.0
#: Cycles per element for heavy DCE work (the dynamic attention products).
_DARTH_CYCLES_PER_DCE_MAC = 130.0
#: Energy of one Boolean µop row (Table 3 array power over 64 rows).
_DARTH_ENERGY_PER_ELEMENTWISE_J = 2.5e-12
_DARTH_ENERGY_PER_MAC_J = 0.08e-12
_DARTH_ENERGY_PER_LOOKUP_J = 1.0e-12
_DARTH_ENERGY_PER_NONLINEAR_J = 60.0e-12
_DARTH_STATIC_POWER_PER_HCT_W = (Table3.FRONT_END_POWER_MW / Table3.FRONT_END_SHARED_BY) * 1e-3


def darth_pum_model(workload: str, adc_kind: str = "sar",
                    hct_config: Optional[HctConfig] = None) -> UnitBasedModel:
    """The DARTH-PUM chip model for one workload."""
    config = hct_config if hct_config is not None else HctConfig.paper_default(adc_kind)
    num_hcts = AreaModel(config).iso_area_hct_count()
    clock = 1.0e9
    bit_product = _bit_product(workload)

    # ADC choice scales the per-step MVM latency: 2 SAR ADCs digitise the 64
    # bitlines in 32 cycles (rate-matched with the 64-cycle DCE write), while
    # a single ramp ADC takes 256 cycles per step unless early-terminated.
    if adc_kind == "sar":
        step_cycles = 64.0
    else:
        step_cycles = 256.0 if bit_product > 1 else 64.0  # AES early-terminates
    bitmacs_per_cycle = 64 * 64 * 64 / step_cycles

    hcts_per_copy = min(_HCTS_PER_MODEL_COPY.get(workload, 1), num_hcts)
    copies = max(1, num_hcts // hcts_per_copy)
    per_copy_scale = hcts_per_copy

    heavy_dce = workload.startswith("llm")
    elementwise_cycles = _DARTH_CYCLES_PER_DCE_MAC if heavy_dce else _DARTH_CYCLES_PER_ELEMENTWISE
    elementwise_rate = (
        64 * _DARTH_ACTIVE_PIPELINES / elementwise_cycles * clock * per_copy_scale
    )
    overhead_s, overhead_j = _DARTH_ITEM_OVERHEAD.get(workload, (0.0, 0.0))
    if adc_kind == "ramp" and bit_product == 1:
        # AES: the ramp ADC terminates after the two LSB steps and converts
        # all 64 bitlines concurrently, trimming the per-round coordination.
        overhead_s *= 0.75
    return UnitBasedModel(
        name=f"darth_pum_{adc_kind}",
        num_units=copies,
        items_per_unit=4.0 if workload.startswith("aes") else 1.0,
        mvm_macs_per_s=bitmacs_per_cycle / bit_product * clock * per_copy_scale,
        elementwise_ops_per_s=elementwise_rate,
        lookup_ops_per_s=4.0 * clock * per_copy_scale,
        nonlinear_ops_per_s=64 * _DARTH_ACTIVE_PIPELINES / _DARTH_CYCLES_PER_NONLINEAR
        * clock * per_copy_scale,
        host_bytes_per_s=float("inf"),
        energy_per_mac_j=_DARTH_ENERGY_PER_MAC_J * bit_product / 64.0,
        energy_per_elementwise_j=_DARTH_ENERGY_PER_ELEMENTWISE_J,
        energy_per_lookup_j=_DARTH_ENERGY_PER_LOOKUP_J,
        energy_per_nonlinear_j=_DARTH_ENERGY_PER_NONLINEAR_J,
        energy_per_host_byte_j=0.0,
        static_power_per_unit_w=_DARTH_STATIC_POWER_PER_HCT_W * per_copy_scale,
        per_item_overhead_s=overhead_s,
        energy_per_item_overhead_j=overhead_j,
    )


# --------------------------------------------------------------------------- #
# Baseline: Intel i7-13700 + analog PUM accelerator                            #
# --------------------------------------------------------------------------- #
_CPU_CORES = 16
_CPU_CLOCK = 4.0e9
#: Effective int8 SIMD lanes per core after dependency/issue inefficiencies.
_CPU_EFFECTIVE_LANES = 8.0
_CPU_LOOKUPS_PER_CYCLE = 2.0
_CPU_NONLINEAR_PER_CYCLE = 0.05
#: Host <-> accelerator bandwidth shared by all cores (bytes/s).
_CPU_ACCEL_BANDWIDTH = 2.0e10
_ANALOG_ACCEL_MACS_PER_S = 2.0e13
_CPU_ENERGY_PER_ELEMENTWISE_J = 60.0e-12
_CPU_ENERGY_PER_LOOKUP_J = 120.0e-12
_CPU_ENERGY_PER_NONLINEAR_J = 2.0e-9
_CPU_ENERGY_PER_HOST_BYTE_J = 40.0e-12
_ANALOG_ACCEL_ENERGY_PER_MAC_J = 0.3e-12
_CPU_STATIC_POWER_PER_CORE_W = 4.0


def baseline_model(workload: str) -> UnitBasedModel:
    """The analog-accelerator + CPU baseline for one workload."""
    return UnitBasedModel(
        name="baseline",
        num_units=_CPU_CORES,
        items_per_unit=1.0,
        mvm_macs_per_s=_ANALOG_ACCEL_MACS_PER_S / _CPU_CORES,
        elementwise_ops_per_s=_CPU_EFFECTIVE_LANES * _CPU_CLOCK,
        lookup_ops_per_s=_CPU_LOOKUPS_PER_CYCLE * _CPU_CLOCK,
        nonlinear_ops_per_s=_CPU_NONLINEAR_PER_CYCLE * _CPU_CLOCK,
        host_bytes_per_s=_CPU_ACCEL_BANDWIDTH / _CPU_CORES,
        energy_per_mac_j=_ANALOG_ACCEL_ENERGY_PER_MAC_J,
        energy_per_elementwise_j=_CPU_ENERGY_PER_ELEMENTWISE_J,
        energy_per_lookup_j=_CPU_ENERGY_PER_LOOKUP_J,
        energy_per_nonlinear_j=_CPU_ENERGY_PER_NONLINEAR_J,
        energy_per_host_byte_j=_CPU_ENERGY_PER_HOST_BYTE_J,
        static_power_per_unit_w=_CPU_STATIC_POWER_PER_CORE_W,
    )


# --------------------------------------------------------------------------- #
# DigitalPUM: iso-area RACER/OSCAR chip                                        #
# --------------------------------------------------------------------------- #
_DIGITAL_CLUSTERS = 2400
_DIGITAL_ACTIVE_PIPELINES = 2  # thermal limit (Section 6)
_DIGITAL_CYCLES_PER_ELEMENTWISE = 12.0
_DIGITAL_CYCLES_PER_BITMAC = 2.0
_DIGITAL_CYCLES_PER_LOOKUP = 130.0  # copy + mask + AND sequence (no element load)
_DIGITAL_CYCLES_PER_NONLINEAR = 300.0
_DIGITAL_ENERGY_PER_ELEMENTWISE_J = 2.5e-12
_DIGITAL_ENERGY_PER_BITMAC_J = 0.4e-12
_DIGITAL_ENERGY_PER_LOOKUP_J = 300.0e-12  # copy + mask + AND over a full register
_DIGITAL_ENERGY_PER_NONLINEAR_J = 60.0e-12
_DIGITAL_STATIC_POWER_PER_CLUSTER_W = 8e-3


def digital_pum_model(workload: str) -> UnitBasedModel:
    """The iso-area digital-only PUM chip for one workload."""
    clock = 1.0e9
    bit_product = _bit_product(workload)
    lanes = 64 * _DIGITAL_ACTIVE_PIPELINES
    # Bit-serial MACs: cost grows with the operand bit product (shift-and-add
    # long multiplication in the pipelines).
    mac_cycles = _DIGITAL_CYCLES_PER_BITMAC * max(1.0, bit_product * 1.5)
    hcts_per_copy = min(_HCTS_PER_MODEL_COPY.get(workload, 1), _DIGITAL_CLUSTERS)
    copies = max(1, _DIGITAL_CLUSTERS // hcts_per_copy)
    scale = hcts_per_copy
    return UnitBasedModel(
        name="digital_pum",
        num_units=copies,
        items_per_unit=4.0 if workload.startswith("aes") else 1.0,
        mvm_macs_per_s=lanes / mac_cycles * clock * scale,
        elementwise_ops_per_s=lanes / _DIGITAL_CYCLES_PER_ELEMENTWISE * clock * scale,
        lookup_ops_per_s=lanes / _DIGITAL_CYCLES_PER_LOOKUP / 64.0 * clock * scale,
        nonlinear_ops_per_s=lanes / _DIGITAL_CYCLES_PER_NONLINEAR * clock * scale,
        host_bytes_per_s=float("inf"),
        energy_per_mac_j=_DIGITAL_ENERGY_PER_BITMAC_J * max(1.0, bit_product / 16.0),
        energy_per_elementwise_j=_DIGITAL_ENERGY_PER_ELEMENTWISE_J,
        energy_per_lookup_j=_DIGITAL_ENERGY_PER_LOOKUP_J,
        energy_per_nonlinear_j=_DIGITAL_ENERGY_PER_NONLINEAR_J,
        energy_per_host_byte_j=0.0,
        static_power_per_unit_w=_DIGITAL_STATIC_POWER_PER_CLUSTER_W * scale,
    )


# --------------------------------------------------------------------------- #
# AppAccel: application-specific accelerators                                  #
# --------------------------------------------------------------------------- #
def app_accel_model(workload: str) -> UnitBasedModel:
    """The application-specific accelerator evaluated for each workload."""
    if workload.startswith("aes"):
        # Intel AES-NI: the block cipher runs on the CPU cores with the
        # dedicated instructions; round function cost collapses but each
        # block still flows through the core pipeline and memory system.
        return UnitBasedModel(
            name="app_accel_aesni",
            num_units=_CPU_CORES,
            items_per_unit=1.0,
            mvm_macs_per_s=36864.0 / 80e-9,      # MixColumns folded into AESENC
            elementwise_ops_per_s=364.0 / 80e-9,  # remaining round work
            lookup_ops_per_s=float("inf"),        # SubBytes folded into AESENC
            nonlinear_ops_per_s=float("inf"),
            host_bytes_per_s=5.0e10,              # plaintext streamed from DRAM
            energy_per_elementwise_j=20.0e-12,
            energy_per_mac_j=0.02e-12,
            energy_per_host_byte_j=10.0e-12,
            static_power_per_unit_w=_CPU_STATIC_POWER_PER_CORE_W,
        )
    if workload.startswith("resnet"):
        # Xiao et al.-style analog CNN accelerator with ramp ADCs, current
        # integrators, and peripheral ALUs: very fast per tile, but the SFU
        # area leaves fewer parallel tiles in an iso-area comparison.
        # The SFU-heavy design leaves roughly a third of the iso-area budget
        # for analog tiles compared to DARTH-PUM's HCT count.
        tiles = 620
        return UnitBasedModel(
            name="app_accel_cnn",
            num_units=tiles / 27.0,
            items_per_unit=1.0,
            mvm_macs_per_s=64 * 64 * 64 / 48.0 * 1e9 / 64.0 * 27.0,
            elementwise_ops_per_s=64 * 16 * 1e9 * 27.0,   # dedicated SFUs
            lookup_ops_per_s=float("inf"),
            nonlinear_ops_per_s=64 * 8 * 1e9 * 27.0,
            host_bytes_per_s=float("inf"),
            energy_per_mac_j=0.10e-12,
            energy_per_elementwise_j=1.0e-12,
            energy_per_nonlinear_j=5.0e-12,
            static_power_per_unit_w=0.3,
            per_item_overhead_s=1.0e-5,
            energy_per_item_overhead_j=8.0e-6,
        )
    # ISAAC-style transformer accelerator with SAR ADCs and a rich SFU: the
    # SFUs make the non-MVM 71% of DARTH-PUM's time essentially free, and the
    # shared-ADC crossbar organisation sustains a higher MVM rate per tile.
    return UnitBasedModel(
        name="app_accel_llm",
        num_units=1.0,
        items_per_unit=1.0,
        mvm_macs_per_s=1.6e14,
        elementwise_ops_per_s=6.0e13,
        lookup_ops_per_s=float("inf"),
        nonlinear_ops_per_s=2.0e13,
        host_bytes_per_s=float("inf"),
        energy_per_mac_j=0.10e-12,
        energy_per_elementwise_j=1.5e-12,
        energy_per_nonlinear_j=8.0e-12,
        static_power_per_unit_w=40.0,
    )


# --------------------------------------------------------------------------- #
# GPU: NVIDIA GeForce RTX 4090                                                 #
# --------------------------------------------------------------------------- #
_GPU_SMS = 128
_GPU_CLOCK = 2.2e9
_GPU_INT8_OPS_PER_SM_PER_CYCLE = 512.0
_GPU_ELEMENTWISE_PER_SM_PER_CYCLE = 64.0
_GPU_LOOKUP_PER_SM_PER_CYCLE = 32.0   # AES tables are cache resident
_GPU_NONLINEAR_PER_SM_PER_CYCLE = 2.0
_GPU_MEM_BANDWIDTH = 1.0e12
_GPU_ENERGY_PER_MAC_J = 1.0e-12
_GPU_ENERGY_PER_ELEMENTWISE_J = 6.0e-12
_GPU_ENERGY_PER_LOOKUP_J = 10.0e-12
_GPU_ENERGY_PER_NONLINEAR_J = 40.0e-12
_GPU_STATIC_POWER_PER_SM_W = 1.2


def gpu_model(workload: str) -> UnitBasedModel:
    """The RTX 4090-class GPU model for one workload."""
    if workload.startswith("llm"):
        efficiency = 0.25
    elif workload.startswith("resnet"):
        # Small CIFAR kernels under-utilise the SMs even with batching.
        efficiency = 0.10
    else:
        efficiency = 0.35
    return UnitBasedModel(
        name="gpu",
        num_units=_GPU_SMS,
        items_per_unit=1.0,
        mvm_macs_per_s=_GPU_INT8_OPS_PER_SM_PER_CYCLE * _GPU_CLOCK * efficiency,
        elementwise_ops_per_s=_GPU_ELEMENTWISE_PER_SM_PER_CYCLE * _GPU_CLOCK * efficiency,
        lookup_ops_per_s=_GPU_LOOKUP_PER_SM_PER_CYCLE * _GPU_CLOCK,
        nonlinear_ops_per_s=_GPU_NONLINEAR_PER_SM_PER_CYCLE * _GPU_CLOCK,
        host_bytes_per_s=_GPU_MEM_BANDWIDTH / _GPU_SMS,
        energy_per_mac_j=_GPU_ENERGY_PER_MAC_J,
        energy_per_elementwise_j=_GPU_ENERGY_PER_ELEMENTWISE_J,
        energy_per_lookup_j=_GPU_ENERGY_PER_LOOKUP_J,
        energy_per_nonlinear_j=_GPU_ENERGY_PER_NONLINEAR_J,
        energy_per_host_byte_j=15.0e-12,
        static_power_per_unit_w=_GPU_STATIC_POWER_PER_SM_W,
    )


def model_for(architecture: str, workload: str, adc_kind: str = "sar") -> UnitBasedModel:
    """Look up an architecture model by name."""
    factories = {
        "baseline": lambda: baseline_model(workload),
        "digital_pum": lambda: digital_pum_model(workload),
        "darth_pum": lambda: darth_pum_model(workload, adc_kind),
        "app_accel": lambda: app_accel_model(workload),
        "gpu": lambda: gpu_model(workload),
    }
    if architecture not in factories:
        raise ConfigurationError(
            f"unknown architecture {architecture!r}; expected one of {sorted(factories)}"
        )
    return factories[architecture]()

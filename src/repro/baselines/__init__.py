"""Comparison architectures: Baseline, DigitalPUM, AppAccel, GPU, naive hybrids."""

from .base import ArchPerformance, RateModel
from .naive_hybrid import NAIVE_HYBRID_SPLITS, HybridSplit, figure7_sweep, naive_hybrid_throughput
from .presets import (
    WORKLOAD_MAC_BIT_PRODUCT,
    app_accel_model,
    baseline_model,
    darth_pum_model,
    digital_pum_model,
    gpu_model,
    model_for,
)
from .unit_model import UnitBasedModel

__all__ = [
    "ArchPerformance",
    "HybridSplit",
    "NAIVE_HYBRID_SPLITS",
    "RateModel",
    "UnitBasedModel",
    "WORKLOAD_MAC_BIT_PRODUCT",
    "app_accel_model",
    "baseline_model",
    "darth_pum_model",
    "digital_pum_model",
    "figure7_sweep",
    "gpu_model",
    "model_for",
    "naive_hybrid_throughput",
]

"""Unit-based architecture performance model.

All of the evaluated architectures share one structure: a number of
identical *units* (hybrid compute tiles, CPU cores, GPU SM clusters,
accelerator tiles), each of which processes a bounded number of work items
concurrently at per-unit rates for each operation class.  Per-item latency
serialises the phases on one unit; chip throughput multiplies the per-unit
throughput by the number of units; energy combines per-operation energies
with the unit's static power over the item's latency.

The per-unit rates are derived from each platform's published parameters
(clock, lanes, ADC latencies, Table 3 powers); EXPERIMENTS.md documents the
handful of efficiency factors that were calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..workloads.profile import WorkloadProfile
from .base import ArchPerformance

__all__ = ["UnitBasedModel"]


@dataclass
class UnitBasedModel:
    """Performance model built from identical processing units."""

    name: str
    #: Number of units on the chip / in the package (iso-area).
    num_units: float
    #: Independent work items one unit keeps in flight.
    items_per_unit: float = 1.0
    #: Per-unit processing rates (operations per second).
    mvm_macs_per_s: float = float("inf")
    elementwise_ops_per_s: float = float("inf")
    lookup_ops_per_s: float = float("inf")
    nonlinear_ops_per_s: float = float("inf")
    host_bytes_per_s: float = float("inf")
    #: Per-operation energies (joules).
    energy_per_mac_j: float = 0.0
    energy_per_elementwise_j: float = 0.0
    energy_per_lookup_j: float = 0.0
    energy_per_nonlinear_j: float = 0.0
    energy_per_host_byte_j: float = 0.0
    #: Static power of one unit while an item is in flight (watts).
    static_power_per_unit_w: float = 0.0
    #: Fixed per-item serialisation overhead (round/layer coordination work
    #: the coarse operation counts of the profile do not enumerate).
    per_item_overhead_s: float = 0.0
    #: Fixed per-item energy overhead matching ``per_item_overhead_s``.
    energy_per_item_overhead_j: float = 0.0

    def _phase_times(self, profile: WorkloadProfile) -> Dict[str, float]:
        def time_for(amount: float, rate: float) -> float:
            if amount <= 0 or rate == float("inf"):
                return 0.0
            return amount / rate

        return {
            "mvm": time_for(profile.total_macs, self.mvm_macs_per_s),
            "elementwise": time_for(profile.elementwise_ops, self.elementwise_ops_per_s),
            "lookup": time_for(profile.lookup_ops, self.lookup_ops_per_s),
            "nonlinear": time_for(profile.nonlinear_ops, self.nonlinear_ops_per_s),
            "data_movement": time_for(profile.host_bytes_per_item, self.host_bytes_per_s),
        }

    def evaluate(self, profile: WorkloadProfile) -> ArchPerformance:
        """Evaluate the model on a workload profile."""
        phases = self._phase_times(profile)
        if self.per_item_overhead_s:
            phases = dict(phases)
            phases["coordination"] = self.per_item_overhead_s
        latency = sum(phases.values())
        items_in_flight = min(self.num_units * self.items_per_unit,
                              profile.batch_parallelism)
        throughput = items_in_flight / latency if latency > 0 else float("inf")
        energies = {
            "coordination": self.energy_per_item_overhead_j,
            "mvm": profile.total_macs * self.energy_per_mac_j,
            "elementwise": profile.elementwise_ops * self.energy_per_elementwise_j,
            "lookup": profile.lookup_ops * self.energy_per_lookup_j,
            "nonlinear": profile.nonlinear_ops * self.energy_per_nonlinear_j,
            "data_movement": profile.host_bytes_per_item * self.energy_per_host_byte_j,
            "static": self.static_power_per_unit_w * latency / max(self.items_per_unit, 1.0),
        }
        return ArchPerformance(
            architecture=self.name,
            workload=profile.name,
            throughput_items_per_s=throughput,
            latency_s=latency,
            energy_per_item_j=sum(energies.values()),
            latency_breakdown_s=phases,
            energy_breakdown_j=energies,
        )

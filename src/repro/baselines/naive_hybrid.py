"""The Section 3 motivation study: naive hybrid PUM configurations (Figure 7).

Figure 7 compares, iso-area, AES-128 throughput of (D) a pure digital PUM
chip, (A) analog PUM plus a CPU for the non-MVM steps, and nine naive hybrid
splits H-1..H-9 that convert part of the digital area into analog arrays
without any of DARTH-PUM's coordination hardware.  Throughput rises with
the first analog arrays (MixColumns accelerates), peaks around H-5, and
falls again once too few digital arrays remain to keep enough plaintext
blocks in flight.  The ideal logic family is also modelled to show it buys
little once analog arrays handle the MVMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads.aes.profile import aes_profile

__all__ = ["HybridSplit", "NAIVE_HYBRID_SPLITS", "naive_hybrid_throughput", "figure7_sweep"]


@dataclass(frozen=True)
class HybridSplit:
    """A naive hybrid configuration: how many arrays are digital vs analog."""

    label: str
    digital_arrays: int
    analog_arrays: int


#: The configurations swept in Figure 7 (iso-area to the Arm CPU).
NAIVE_HYBRID_SPLITS: Tuple[HybridSplit, ...] = (
    HybridSplit("D: Digital PUM", 832, 0),
    HybridSplit("H-1: D-768, A-128", 768, 128),
    HybridSplit("H-2: D-700, A-162", 700, 162),
    HybridSplit("H-3: D-640, A-192", 640, 192),
    HybridSplit("H-4: D-512, A-256", 512, 256),
    HybridSplit("H-5: D-375, A-324", 375, 324),
    HybridSplit("H-6: D-256, A-384", 256, 384),
    HybridSplit("H-7: D-128, A-448", 128, 448),
    HybridSplit("H-8: D-64, A-480", 64, 480),
    HybridSplit("H-9: D-32, A-496", 32, 496),
    HybridSplit("A: Analog+CPU", 0, 512),
)

#: Cycles per 64-element word operation under each logic family.
_FAMILY_ELEMENTWISE_CYCLES: Dict[str, float] = {"oscar": 12.0, "ideal": 5.0}
_FAMILY_BITMAC_CYCLES: Dict[str, float] = {"oscar": 2.0, "ideal": 1.0}
#: Arm CPU non-MVM latency components for one block (pure-analog config):
#: the gathers of SubBytes dominate, with the per-round offload round trips.
_ARM_CPU_NON_MVM_OPS_PER_S = 1.5e9
_ARM_CPU_LOOKUPS_PER_S = 4.0e8
_ARM_CPU_CORES = 8
#: Occupancy of one naive-hybrid analog MVM (no shift units, no IIU): the
#: analog step plus the serialised write into the digital arrays
#: (Figure 10a behaviour).
_NAIVE_ANALOG_MVM_CYCLES = 70.0
#: Analog arrays needed to hold one 32x32 MixColumns matrix copy.
_ARRAYS_PER_MVM_UNIT = 4


def naive_hybrid_throughput(split: HybridSplit, logic_family: str = "oscar") -> float:
    """AES-128 block throughput (blocks/s) of one naive hybrid configuration.

    Throughput is bottleneck-limited: digital pipelines (one block in flight
    per pipeline) and analog MVM units (one MixColumns at a time per matrix
    copy) work on different blocks concurrently, so the slower resource class
    sets the steady-state rate.
    """
    profile = aes_profile(128)
    clock = 1.0e9
    elementwise_cycles = _FAMILY_ELEMENTWISE_CYCLES[logic_family]
    bitmac_cycles = _FAMILY_BITMAC_CYCLES[logic_family]

    if split.digital_arrays == 0:
        # Pure analog + CPU: everything non-MVM goes to the Arm CPU.
        per_core_latency = (
            profile.elementwise_ops / _ARM_CPU_NON_MVM_OPS_PER_S
            + profile.lookup_ops / _ARM_CPU_LOOKUPS_PER_S
        )
        return _ARM_CPU_CORES / per_core_latency

    pipelines = max(split.digital_arrays // 64, 1)
    # Per-block digital work: lookups (element loads), ShiftRows,
    # AddRoundKey; pure digital also pays the bit-serial MixColumns.
    digital_ops = profile.elementwise_ops + profile.lookup_ops * 2.0
    digital_cycles = digital_ops / 64.0 * elementwise_cycles
    if split.analog_arrays == 0:
        digital_cycles += profile.total_macs / 64.0 * bitmac_cycles
    digital_rate = pipelines / digital_cycles  # blocks per cycle

    if split.analog_arrays > 0:
        mvm_units = max(split.analog_arrays // _ARRAYS_PER_MVM_UNIT, 1)
        analog_cycles_per_block = profile.total_mvm_invocations * _NAIVE_ANALOG_MVM_CYCLES
        analog_rate = mvm_units / analog_cycles_per_block
        rate = min(digital_rate, analog_rate)
    else:
        rate = digital_rate
    return rate * clock


def figure7_sweep(logic_families: Tuple[str, ...] = ("oscar", "ideal")) -> Dict[str, List[float]]:
    """Throughput of every Figure 7 configuration, normalised to D/OSCAR."""
    reference = naive_hybrid_throughput(NAIVE_HYBRID_SPLITS[0], "oscar")
    result: Dict[str, List[float]] = {family: [] for family in logic_families}
    for family in logic_families:
        for split in NAIVE_HYBRID_SPLITS:
            result[family].append(naive_hybrid_throughput(split, family) / reference)
    result["labels"] = [split.label for split in NAIVE_HYBRID_SPLITS]  # type: ignore[assignment]
    return result

"""Shared performance-model abstractions for all evaluated architectures.

Each architecture model maps a :class:`~repro.workloads.profile.
WorkloadProfile` to throughput, per-item latency, and per-item energy.  The
models share a common structure: a set of *rates* (operations per second for
each operation class the profile distinguishes) and *energies* (joules per
operation).  Throughput uses the bottleneck (pipelined) model -- different
resources work on different items concurrently -- while latency serialises
the phases of a single item, which is what the per-kernel breakdowns
(Figures 14 and 15) report.

The absolute rates are first-order analytical estimates calibrated against
the published characteristics of each platform (clock rates, lane counts,
bandwidths, Table 3 energies); EXPERIMENTS.md records the calibration.  The
figures only ever use ratios between architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..workloads.profile import WorkloadProfile

__all__ = ["ArchPerformance", "RateModel"]


@dataclass(frozen=True)
class ArchPerformance:
    """Throughput/latency/energy of one architecture on one workload."""

    architecture: str
    workload: str
    #: Work items completed per second at full chip/package utilisation.
    throughput_items_per_s: float
    #: Latency of a single item in seconds (phases serialised).
    latency_s: float
    #: Energy per item in joules.
    energy_per_item_j: float
    #: Seconds per item attributed to each phase (mvm / elementwise / ...).
    latency_breakdown_s: Dict[str, float] = field(default_factory=dict)
    #: Joules per item attributed to each phase.
    energy_breakdown_j: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "ArchPerformance") -> float:
        """Throughput ratio of this architecture over ``other``."""
        return self.throughput_items_per_s / other.throughput_items_per_s

    def energy_savings_over(self, other: "ArchPerformance") -> float:
        """Energy-per-item ratio of ``other`` over this architecture."""
        return other.energy_per_item_j / self.energy_per_item_j


@dataclass
class RateModel:
    """A generic rate/energy performance model.

    Rates are in operations per second (``float('inf')`` means the phase is
    free on this architecture); energies are joules per operation.  Items
    can additionally be limited by ``max_parallel_items`` (e.g. how many AES
    blocks fit on the chip at once) though none of the evaluated workloads
    hits that limit in practice.
    """

    name: str
    mvm_macs_per_s: float
    elementwise_ops_per_s: float
    lookup_ops_per_s: float
    nonlinear_ops_per_s: float
    host_bytes_per_s: float = float("inf")
    energy_per_mac_j: float = 0.0
    energy_per_elementwise_j: float = 0.0
    energy_per_lookup_j: float = 0.0
    energy_per_nonlinear_j: float = 0.0
    energy_per_host_byte_j: float = 0.0
    #: Static (leakage / front-end / host) power drawn while an item is in
    #: flight, charged against the item's latency.
    static_power_w: float = 0.0

    # ------------------------------------------------------------------ #
    def _phase_times(self, profile: WorkloadProfile) -> Dict[str, float]:
        def time_for(amount: float, rate: float) -> float:
            if amount <= 0:
                return 0.0
            if rate == float("inf"):
                return 0.0
            return amount / rate

        return {
            "mvm": time_for(profile.total_macs, self.mvm_macs_per_s),
            "elementwise": time_for(profile.elementwise_ops, self.elementwise_ops_per_s),
            "lookup": time_for(profile.lookup_ops, self.lookup_ops_per_s),
            "nonlinear": time_for(profile.nonlinear_ops, self.nonlinear_ops_per_s),
            "data_movement": time_for(profile.host_bytes_per_item, self.host_bytes_per_s),
        }

    def _phase_energies(self, profile: WorkloadProfile, latency_s: float) -> Dict[str, float]:
        return {
            "mvm": profile.total_macs * self.energy_per_mac_j,
            "elementwise": profile.elementwise_ops * self.energy_per_elementwise_j,
            "lookup": profile.lookup_ops * self.energy_per_lookup_j,
            "nonlinear": profile.nonlinear_ops * self.energy_per_nonlinear_j,
            "data_movement": profile.host_bytes_per_item * self.energy_per_host_byte_j,
            "static": self.static_power_w * latency_s,
        }

    def evaluate(self, profile: WorkloadProfile) -> ArchPerformance:
        """Evaluate the model on a workload profile."""
        phase_times = self._phase_times(profile)
        latency = sum(phase_times.values())
        # Throughput: phases of different items overlap, so the slowest phase
        # is the steady-state bottleneck.
        bottleneck = max(phase_times.values()) if latency > 0 else 0.0
        throughput = 1.0 / bottleneck if bottleneck > 0 else float("inf")
        energies = self._phase_energies(profile, latency)
        return ArchPerformance(
            architecture=self.name,
            workload=profile.name,
            throughput_items_per_s=throughput,
            latency_s=latency,
            energy_per_item_j=sum(energies.values()),
            latency_breakdown_s=phase_times,
            energy_breakdown_j=energies,
        )

# Convenience wrappers around the canonical commands (see README.md).
# Everything assumes the repo root as working directory.

PY := PYTHONPATH=src python

.PHONY: test unit bench doctest docs-check batch-bench serve-bench serve-latency-bench kernel-bench chaos recovery-bench integrity-bench sched-bench cluster-bench cluster-chaos cluster-demo plan-dump profile profile-server lint coverage all

# Tier-1: the full unit + benchmark suite.
test:
	$(PY) -m pytest -x -q

# Unit tests only (fast).
unit:
	$(PY) -m pytest tests -q

# Figure/table regeneration + throughput benchmarks.
bench:
	$(PY) -m pytest benchmarks -q

# Doctest-style examples in the public runtime + plan APIs.
doctest:
	$(PY) -m pytest --doctest-modules src/repro/runtime src/repro/plan -q

# Documentation health: doctests + markdown link checker.
docs-check:
	$(PY) -m pytest tests/test_docs.py -q

# The batched-engine acceptance gate (>=5x over looped exec_mvm).
batch-bench:
	$(PY) -m pytest benchmarks/test_batch_throughput.py -q

# The serving acceptance gate (>=3x over request-at-a-time at 16+ concurrent).
# Writes benchmarks/artifacts/serving_throughput.json (the CI artifact).
serve-bench:
	$(PY) -m pytest benchmarks/test_serving_throughput.py -q

# The serving fast-path acceptance gate (>=3x p50 tick-loop speedup over the
# pre-rework scheduler at 256 queued requests, bit-identical responses and
# ledgers).  Writes benchmarks/artifacts/serving_latency.json; set
# REPRO_BENCH_RECORD=1 (as the CI benchmarks job does) to also append the
# headline numbers to BENCH_serving.json.
serve-latency-bench:
	$(PY) -m pytest benchmarks/test_serving_latency.py -q

# The vectorized-backend acceptance gate (>=10x over backend="reference" on
# a 64x64 batch-32 MVM).  Writes benchmarks/artifacts/kernel_speedup.json;
# set REPRO_BENCH_RECORD=1 (as the CI benchmarks job does) to also append
# the headline numbers to BENCH_kernels.json.
kernel-bench:
	$(PY) -m pytest benchmarks/test_kernel_speedup.py -q

# The resilience gates: fault-injection chaos suite (kill a device under
# open-loop load; zero lost futures, bit-identical responses) plus the
# 200+-schedule conservation harness.  Sweep schedules with
# REPRO_TEST_SEED=<n> make chaos (as the CI chaos job does).
chaos:
	$(PY) -m pytest tests/test_chaos.py tests/test_invariants.py -q

# Degraded-mode recovery benchmark (drain wall-clock with a mid-load kill
# vs fault-free; back-to-primary after heal).  Writes
# benchmarks/artifacts/recovery.json; set REPRO_BENCH_RECORD=1 (as the CI
# benchmarks job does) to also append to BENCH_recovery.json.
recovery-bench:
	$(PY) -m pytest benchmarks/test_recovery.py -q

# Integrity acceptance gate: ABFT verification overhead (verify="full"
# within 1.15x of the fault-free drain) and the wall-clock cost of a live
# band rebuild after losing every replica.  Writes
# benchmarks/artifacts/integrity.json; set REPRO_BENCH_RECORD=1 (as the CI
# chaos job does) to also append to BENCH_recovery.json.
integrity-bench:
	$(PY) -m pytest benchmarks/test_recovery.py::test_integrity_benchmark -q

# Cost-aware scheduling gate (CostAwarePolicy beats StaticBatchingPolicy on
# p99 latency AND deadline sheds at equal open-loop load; static-via-policy
# bit-identical to legacy max_batch/max_wait_ticks kwargs).  Writes
# benchmarks/artifacts/scheduling.json; set REPRO_BENCH_RECORD=1 (as the CI
# benchmarks job does) to also append to BENCH_scheduling.json.
sched-bench:
	$(PY) -m pytest benchmarks/test_scheduling.py -q

# Cluster scaling gate: multi-process workers vs the GIL (>=2x aggregate
# throughput 1 -> 4 workers on the noisy preset when >=4 cores are
# available; transport sanity floor otherwise), open-loop Poisson p50/p99,
# and the kill-one-worker recovery blip.  Writes
# benchmarks/artifacts/cluster.json; set REPRO_BENCH_RECORD=1 (as the CI
# cluster job does) to also append to BENCH_cluster.json.
cluster-bench:
	$(PY) -m pytest benchmarks/test_cluster_scaling.py -q

# Cluster chaos gate: one open-loop run absorbing the seeded transport
# fault campaign (drop/dup/delay/corrupt), an induced straggler, and a
# SIGKILL at replication=2 -- zero lost futures, answers bit-identical to
# a fault-free twin, supervised restart observed, p99 recovery blip
# bounded.  Writes benchmarks/artifacts/cluster_chaos.json; set
# REPRO_BENCH_RECORD=1 (as the CI cluster-chaos job does, sweeping
# REPRO_TEST_SEED over {12345, 1, 31337}) to also append to
# BENCH_cluster.json.
cluster-chaos:
	$(PY) -m pytest benchmarks/test_cluster_chaos_gate.py tests/test_cluster_chaos.py -q

# Run the scale-out quickstart (gateway + 2 replicated worker processes).
cluster-demo:
	$(PY) examples/cluster.py

# Pretty-print a sample compiled execution plan (MvmPlan + ShardedPlan).
plan-dump:
	$(PY) -m repro.plan

# cProfile the serving benchmark and print the top-20 cumulative hot spots.
profile:
	$(PY) benchmarks/profile_serving.py

# cProfile the scheduler tick loop at serving depth (256 queued requests
# over 8 matrices, bulk ingress) and print the top-25 hot spots.
profile-server:
	$(PY) benchmarks/profile_server_tick.py

# Lint/format gate (needs ruff: pip install -r requirements-dev.txt).
lint:
	ruff check .
	ruff format --check .

# Coverage gate (needs pytest-cov: pip install -r requirements-dev.txt).
coverage:
	$(PY) -m pytest tests benchmarks -q --cov=repro --cov-report=term --cov-fail-under=80

all: test doctest docs-check
